"""Lock inference tests: the paper's examples and core behaviors."""

from repro.inference import infer_locks
from repro.locks import RO, RW
from repro.locks.terms import TPlus, TStar, TVar, term_for_access_path

MOVE_SRC = """
struct elem { elem* next; int* data; }
struct list { elem* head; }

void move(list* from, list* to) {
  atomic {
    elem* x = to->head;
    elem* y = from->head;
    from->head = null;
    if (x == null) {
      to->head = y;
    } else {
      while (x->next != null) { x = x->next; }
      x->next = y;
    }
  }
}

void main() {
  list* a = new list;
  list* b = new list;
  move(a, b);
}
"""


def locks_of(result, section):
    return result.locks_for(section).locks


def test_figure1_move_k9():
    """The paper's Figure 1(c): fine locks on &(to->head) and &(from->head)
    plus a coarse lock E over the list elements."""
    result = infer_locks(MOVE_SRC, k=9)
    locks = locks_of(result, "move#1")
    fine_terms = {lock.term for lock in locks if lock.is_fine}
    assert TPlus(TStar(TVar("to")), "head") in fine_terms
    assert TPlus(TStar(TVar("from")), "head") in fine_terms
    coarse = [lock for lock in locks if lock.is_coarse]
    assert len(coarse) >= 1  # the element lock E
    assert all(lock.eff == RW for lock in locks if lock.is_fine
               and lock.term.fieldname == "head")


def test_figure1_move_k0_all_coarse():
    result = infer_locks(MOVE_SRC, k=0)
    locks = locks_of(result, "move#1")
    assert all(lock.is_coarse for lock in locks)


FIG2_SRC = """
struct obj { int* data; }

void fig2(obj* y, int* w, int c) {
  obj* x;
  x = null;
  if (c == 0) { x = y; }
  atomic {
    x->data = w;
    int* z = y->data;
    *z = 0;
  }
}

void main() { obj* o = new obj; fig2(o, new int, 1); }
"""


def test_figure2_backward_tracing_with_aliasing():
    """Figure 2: the access *z traces back to {y->data, w} because x and y
    may alias."""
    result = infer_locks(FIG2_SRC, k=9)
    locks = locks_of(result, "fig2#1")
    fine = {lock.term for lock in locks if lock.is_fine}
    # *z protected via *(y->data content) and *w̄ (the aliased branch)
    assert term_for_access_path("y", "*", "data", "*") in fine
    assert TStar(TVar("w")) in fine


def test_effects_distinguish_read_only_sections():
    src = """
    struct c { int v; }
    c* C;
    int get() { int r; atomic { r = C->v; } return r; }
    void put(int x) { atomic { C->v = x; } }
    void main() { C = new c; put(1); int g = get(); }
    """
    result = infer_locks(src, k=9)
    get_locks = locks_of(result, "get#1")
    put_locks = locks_of(result, "put#1")
    assert all(lock.eff == RO for lock in get_locks)
    assert any(lock.eff == RW for lock in put_locks)


def test_use_effects_false_promotes_to_rw():
    src = """
    struct c { int v; }
    c* C;
    int get() { int r; atomic { r = C->v; } return r; }
    void main() { C = new c; int g = get(); }
    """
    result = infer_locks(src, k=9, use_effects=False)
    assert all(lock.eff == RW for lock in locks_of(result, "get#1"))


def test_unbounded_traversal_needs_coarse():
    src = """
    struct n { n* next; }
    n* HEAD;
    void walk() {
      atomic {
        n* c = HEAD;
        while (c != null) { c = c->next; }
      }
    }
    void main() { HEAD = new n; walk(); }
    """
    result = infer_locks(src, k=9)
    locks = locks_of(result, "walk#1")
    assert any(lock.is_coarse for lock in locks)


def test_fresh_allocation_needs_no_lock():
    """Objects allocated inside the section are unreachable at entry
    (the paper's k=3 drop in Figure 7)."""
    src = """
    struct n { int v; }
    void f() {
      atomic {
        n* x = new n;
        x->v = 1;
      }
    }
    void main() { f(); }
    """
    result = infer_locks(src, k=9)
    assert locks_of(result, "f#1") == frozenset()


def test_fresh_allocation_through_callee():
    """The allocation-site tracing must cross function boundaries via
    summaries: make() returns a fresh node, so writes to it need no lock."""
    src = """
    struct n { int v; n* next; }
    n* make(int v) {
      n* x = new n;
      x->v = v;
      return x;
    }
    void f() {
      atomic {
        n* y = make(3);
        y->v = 4;
      }
    }
    void main() { f(); }
    """
    result = infer_locks(src, k=9)
    assert locks_of(result, "f#1") == frozenset()


def test_callee_accesses_are_protected():
    src = """
    struct c { int v; }
    c* C;
    void bump() { C->v = C->v + 1; }
    void f() { atomic { bump(); } }
    void main() { C = new c; f(); }
    """
    result = infer_locks(src, k=9)
    locks = locks_of(result, "f#1")
    assert any(lock.eff == RW for lock in locks)
    fine_terms = {lock.term for lock in locks if lock.is_fine}
    assert TPlus(TStar(TVar("C")), "v") in fine_terms


def test_recursive_callee_terminates_and_coarsens():
    src = """
    struct n { n* next; int v; }
    n* HEAD;
    void visit(n* c) {
      if (c != null) {
        c->v = 1;
        visit(c->next);
      }
    }
    void f() { atomic { visit(HEAD); } }
    void main() { HEAD = new n; f(); }
    """
    result = infer_locks(src, k=9)
    locks = locks_of(result, "f#1")
    assert locks  # something protects the traversal
    assert any(lock.is_coarse for lock in locks)


def test_unknown_callee_forces_global():
    src = """
    int g;
    void f() { atomic { mystery(); g = 1; } }
    void main() { f(); }
    """
    result = infer_locks(src, k=9)
    locks = locks_of(result, "f#1")
    assert any(lock.is_global for lock in locks)


def test_global_variable_cells_are_locked():
    src = """
    int g;
    void f() { atomic { g = g + 1; } }
    void main() { f(); }
    """
    result = infer_locks(src, k=9)
    locks = locks_of(result, "f#1")
    fine = [lock for lock in locks if lock.is_fine]
    assert any(lock.term == TVar("g") and lock.eff == RW for lock in fine)


def test_thread_local_variables_omitted():
    src = """
    void f() {
      atomic {
        int x = 1;
        x = x + 1;
      }
    }
    void main() { f(); }
    """
    result = infer_locks(src, k=9)
    assert locks_of(result, "f#1") == frozenset()


def test_dynamic_index_fine_lock():
    """The hashtable-2 effect: a bucket write addressed by k % 64 gets a
    single fine-grain lock."""
    src = """
    struct e { e* next; int key; }
    e** T;
    void put(int k) {
      atomic {
        e* n = new e;
        n->key = k;
        int h = k % 64;
        n->next = T[h];
        T[h] = n;
      }
    }
    void main() { T = new e*[64]; put(5); }
    """
    result = infer_locks(src, k=9)
    locks = locks_of(result, "put#1")
    fine_rw = [lock for lock in locks if lock.is_fine and lock.eff == RW]
    assert len(fine_rw) == 1  # exactly the bucket cell


def test_dynamic_index_coarsens_at_small_k():
    src = """
    struct e { e* next; int key; }
    e** T;
    void put(int k) {
      atomic {
        int h = k % 64;
        T[h] = null;
      }
    }
    void main() { T = new e*[64]; put(5); }
    """
    result = infer_locks(src, k=2)
    locks = locks_of(result, "put#1")
    assert all(not (lock.is_fine and lock.eff == RW) for lock in locks)
    assert any(lock.is_coarse and lock.eff == RW for lock in locks)


def test_loaded_index_coarsens():
    """An index loaded from the heap is not expressible at entry (the
    resizing hashtable effect)."""
    src = """
    struct t { int n; }
    t* T;
    int* A;
    void put(int k) {
      atomic {
        int h = k % T->n;
        A[h] = 1;
      }
    }
    void main() { T = new t; A = new int[8]; put(3); }
    """
    result = infer_locks(src, k=9)
    locks = locks_of(result, "put#1")
    write_locks = [lock for lock in locks if lock.eff == RW]
    assert write_locks and all(lock.is_coarse for lock in write_locks)


def test_merge_joins_branches():
    src = """
    struct c { int v; int w; }
    c* C;
    void f(int b) {
      atomic {
        if (b == 0) { C->v = 1; } else { C->w = 2; }
      }
    }
    void main() { C = new c; f(0); }
    """
    result = infer_locks(src, k=9)
    locks = locks_of(result, "f#1")
    fine_terms = {lock.term for lock in locks if lock.is_fine and lock.eff == RW}
    assert TPlus(TStar(TVar("C")), "v") in fine_terms
    assert TPlus(TStar(TVar("C")), "w") in fine_terms


def test_multiple_sections_independent():
    src = """
    int a;
    int b;
    void f() { atomic { a = 1; } atomic { b = 2; } }
    void main() { f(); }
    """
    result = infer_locks(src, k=9)
    terms1 = {lock.term for lock in locks_of(result, "f#1")}
    terms2 = {lock.term for lock in locks_of(result, "f#2")}
    assert TVar("a") in terms1 and TVar("a") not in terms2
    assert TVar("b") in terms2 and TVar("b") not in terms1


def test_lock_counts_classification():
    result = infer_locks(MOVE_SRC, k=9)
    counts = result.lock_counts()
    assert counts.fine_rw == 2
    assert counts.coarse_rw >= 1
    assert counts.total == counts.fine_rw + counts.coarse_rw + counts.fine_ro \
        + counts.coarse_ro + counts.global_locks


def test_analysis_times_recorded():
    result = infer_locks(MOVE_SRC, k=9)
    assert result.pointer_time >= 0
    assert result.dataflow_time >= 0
    assert result.analysis_time == result.pointer_time + result.dataflow_time
