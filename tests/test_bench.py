"""Benchmark suite tests: programs analyze, run under every configuration,
stay serializable, and reproduce the paper's qualitative orderings."""

import random

import pytest

from repro.bench import (
    ALL_BENCHMARKS,
    CONFIGS,
    MICRO_BENCHMARKS,
    STAMP_BENCHMARKS,
    run_benchmark,
)
from repro.bench.workload import LOW_MIX, HIGH_MIX, micro_ops, th_ops
from repro.inference import infer_locks
from repro.locks import RO, RW


def test_benchmark_registry():
    assert set(MICRO_BENCHMARKS) == {
        "hashtable", "rbtree", "list", "hashtable-2", "TH",
    }
    assert set(STAMP_BENCHMARKS) == {
        "vacation", "genome", "kmeans", "bayes", "labyrinth",
    }
    assert set(ALL_BENCHMARKS) == set(MICRO_BENCHMARKS) | set(STAMP_BENCHMARKS)


@pytest.mark.parametrize("name", sorted(ALL_BENCHMARKS))
def test_every_benchmark_analyzes(name):
    spec = ALL_BENCHMARKS[name]
    result = infer_locks(spec.source, k=9)
    assert result.sections  # at least one atomic section
    for section in result.sections.values():
        assert section.locks or section.section_id.startswith("main")


@pytest.mark.parametrize("name", sorted(ALL_BENCHMARKS))
@pytest.mark.parametrize("config", CONFIGS)
def test_every_benchmark_runs_under_every_config(name, config):
    spec = ALL_BENCHMARKS[name]
    setting = spec.settings[0]
    result = run_benchmark(
        spec, config, threads=4, setting=setting, n_ops=10, ncores=4
    )
    assert result.ticks > 0
    if config != "stm":
        assert result.checked_accesses > 0


@pytest.mark.parametrize("name", ["hashtable-2", "rbtree", "TH"])
def test_lock_runs_are_serializable(name):
    spec = ALL_BENCHMARKS[name]
    result = run_benchmark(
        spec, "fine+coarse", threads=4, setting="high", n_ops=15,
        ncores=4, audit=True,
    )
    assert result.ticks > 0  # assert_serializable ran inside the harness


def test_deterministic_schedules():
    spec = ALL_BENCHMARKS["rbtree"]
    s1 = spec.schedule("low", 4, 20, seed=7)
    s2 = spec.schedule("low", 4, 20, seed=7)
    assert s1 == s2
    s3 = spec.schedule("low", 4, 20, seed=8)
    assert s1 != s3


def test_mixes_have_right_bias():
    rng = random.Random(0)
    ops = micro_ops("put", "get", "rm", "low", rng, 4000)
    gets = sum(1 for f, _ in ops if f == "get")
    puts = sum(1 for f, _ in ops if f == "put")
    assert gets > 3 * puts  # low: gets 4x more common
    rng = random.Random(0)
    ops = micro_ops("put", "get", "rm", "high", rng, 4000)
    gets = sum(1 for f, _ in ops if f == "get")
    puts = sum(1 for f, _ in ops if f == "put")
    assert puts > 3 * gets


def test_th_ops_cover_both_structures():
    rng = random.Random(1)
    ops = th_ops("high", rng, 500)
    sels = {args[0] for _, args in ops}
    assert sels == {0, 1}


# ---------------------------------------------------------------------------
# qualitative shape checks (the paper's headline results, small scale)
# ---------------------------------------------------------------------------


def ticks(name, config, setting, threads=8, n_ops=40):
    return run_benchmark(
        ALL_BENCHMARKS[name], config, threads=threads, setting=setting,
        n_ops=n_ops,
    ).ticks


def test_shape_hashtable2_fine_beats_coarse_in_high():
    """Table 2: fine-grain locks roughly halve hashtable-2-high."""
    coarse = ticks("hashtable-2", "coarse", "high")
    fine = ticks("hashtable-2", "fine+coarse", "high")
    assert fine < 0.75 * coarse


def test_shape_rbtree_read_locks_help_low_only():
    """Table 2: coarse ≈ global in high; coarse ≈ half of global in low."""
    glob_low = ticks("rbtree", "global", "low")
    coarse_low = ticks("rbtree", "coarse", "low")
    assert coarse_low < 0.7 * glob_low
    glob_high = ticks("rbtree", "global", "high")
    coarse_high = ticks("rbtree", "coarse", "high")
    assert coarse_high > 0.85 * glob_high


def test_shape_th_disjoint_structures_beat_global():
    """Table 2: TH's two structures let coarse locks beat the global lock."""
    glob = ticks("TH", "global", "low")
    coarse = ticks("TH", "coarse", "low")
    assert coarse < 0.7 * glob


def test_shape_labyrinth_stm_wins():
    """Table 2: labyrinth is the one benchmark where TL2 beats all locks."""
    glob = ticks("labyrinth", "global", None)
    stm = ticks("labyrinth", "stm", None)
    assert stm < glob


def test_shape_vacation_stm_abort_storm():
    """Table 2: vacation's always-conflicting reservations devastate TL2."""
    result = run_benchmark(
        ALL_BENCHMARKS["vacation"], "stm", threads=8, n_ops=40
    )
    assert result.stm_aborts > result.stm_commits  # more aborts than commits
    coarse = ticks("vacation", "coarse", None)
    assert result.ticks > coarse


def test_shape_kmeans_stm_worst():
    stm = ticks("kmeans", "stm", None)
    glob = ticks("kmeans", "global", None)
    assert stm > glob
