"""Abstract lock scheme framework tests (paper §3.3): lattice laws, operator
behavior, Cartesian products, and the hat (ê) construction."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import lower_program, parse_program
from repro.locks import (
    RO,
    RW,
    EffectScheme,
    FieldScheme,
    KLimitScheme,
    PointsToScheme,
    ProductScheme,
    TPlus,
    TStar,
    TVar,
    term_for_access_path,
)
from repro.pointer import PointsTo

SCHEMES = [
    EffectScheme(),
    FieldScheme(["next", "data", "key"]),
    KLimitScheme(3),
    ProductScheme(EffectScheme(), FieldScheme(["next", "data"])),
    ProductScheme(KLimitScheme(2), EffectScheme()),
]


@pytest.mark.parametrize("scheme", SCHEMES, ids=lambda s: s.name)
def test_top_is_maximum(scheme):
    for lock in scheme.some_locks():
        assert scheme.leq(lock, scheme.top())


@pytest.mark.parametrize("scheme", SCHEMES, ids=lambda s: s.name)
def test_leq_is_partial_order(scheme):
    locks = list(scheme.some_locks())
    for a in locks:
        assert scheme.leq(a, a)
        for b in locks:
            if scheme.leq(a, b) and scheme.leq(b, a):
                assert a == b
            for c in locks:
                if scheme.leq(a, b) and scheme.leq(b, c):
                    assert scheme.leq(a, c)


@pytest.mark.parametrize("scheme", SCHEMES, ids=lambda s: s.name)
def test_join_is_least_upper_bound(scheme):
    locks = list(scheme.some_locks())
    for a, b in itertools.product(locks, locks):
        j = scheme.join(a, b)
        assert scheme.leq(a, j) and scheme.leq(b, j)
        for c in locks:
            if scheme.leq(a, c) and scheme.leq(b, c):
                assert scheme.leq(j, c)


@pytest.mark.parametrize("scheme", SCHEMES, ids=lambda s: s.name)
def test_operators_closed_over_lock_names(scheme):
    lock = scheme.var("x", None, RW)
    lock2 = scheme.plus(lock, "next", None, RO)
    lock3 = scheme.star(lock2, None, RW)
    assert scheme.leq(lock3, scheme.top())


def test_effect_scheme_tracks_effect():
    scheme = EffectScheme()
    assert scheme.var("x", None, RO) == RO
    assert scheme.star(RO, None, RW) == RW
    assert scheme.hat(TStar(TVar("x")), None, RO) == RO
    assert scheme.hat(TStar(TVar("x")), None, RW) == RW


def test_field_scheme_singles_out_fields():
    scheme = FieldScheme(["next", "data"])
    lock = scheme.plus(scheme.top(), "next", None, RW)
    assert lock == frozenset({"next"})
    # derefs widen back to ⊤
    assert scheme.star(lock, None, RW) == scheme.top()
    # unknown fields widen
    assert scheme.plus(scheme.top(), "other", None, RW) == scheme.top()


def test_klimit_widens_past_k():
    scheme = KLimitScheme(2)
    x = scheme.var("x")
    assert x != scheme.top()
    sx = scheme.star(x)
    assert sx != scheme.top()  # size 2 == k
    ssx = scheme.star(sx)
    assert ssx == scheme.top()  # size 3 > k
    assert scheme.plus(ssx, "f") == scheme.top()  # ⊤ absorbs


def test_klimit_zero_admits_nothing():
    scheme = KLimitScheme(0)
    assert scheme.var("x") == scheme.top()


def test_hat_matches_paper_induction():
    """ê: x̂ = x̄, (e+i)^ = ê(ro) + i, (*e)^ = * ê(ro)."""
    scheme = KLimitScheme(9)
    term = term_for_access_path("x", "*", "next")
    lock = scheme.hat(term)
    assert lock == ("expr", TPlus(TStar(TVar("x")), "next"))


def test_product_scheme_componentwise():
    product = ProductScheme(KLimitScheme(1), EffectScheme())
    lock = product.var("x", None, RO)
    assert lock == (("expr", TVar("x")), RO)
    widened = product.star(lock, None, RW)
    assert widened == (KLimitScheme(1).top(), RW)


def test_product_requires_two_schemes():
    with pytest.raises(ValueError):
        ProductScheme(EffectScheme())


def test_pointsto_scheme_partitions():
    source = """
    struct a { a* next; }
    struct b { b* next; }
    void f() { a* x = new a; b* y = new b; }
    """
    program = lower_program(parse_program(source))
    pt = PointsTo(program).analyze()
    scheme = PointsToScheme(pt, "f")
    lx = scheme.star(scheme.var("x"))
    ly = scheme.star(scheme.var("y"))
    assert lx != ly  # disjoint structures, disjoint points-to locks
    assert scheme.leq(lx, scheme.top())
    assert scheme.join(lx, ly) == scheme.top()


def test_pointsto_scheme_unifies_aliases():
    source = """
    struct a { a* next; }
    void f(int c) { a* x = new a; a* y = x; }
    """
    program = lower_program(parse_program(source))
    pt = PointsTo(program).analyze()
    scheme = PointsToScheme(pt, "f")
    assert scheme.star(scheme.var("x")) == scheme.star(scheme.var("y"))


# A generative law check over random product nestings.
@given(st.integers(0, 4), st.sampled_from([RO, RW]),
       st.lists(st.sampled_from(["*", "next", "data"]), max_size=5))
@settings(max_examples=150, deadline=None)
def test_hat_always_below_top(k, eff, path):
    scheme = ProductScheme(KLimitScheme(k), EffectScheme(),
                           FieldScheme(["next", "data"]))
    term = term_for_access_path("x", *path)
    lock = scheme.hat(term, None, eff)
    assert scheme.leq(lock, scheme.top())
