"""The full multi-granularity mode algebra vs. the paper's §5.1 table.

Exhaustive checks of ``modes.compatible`` (the Figure 6(b) / Gray et al.
compatibility matrix, all 25 pairs spelled out) and ``modes.combine``
(the mode-lattice join: commutative, associative, idempotent, a true
least upper bound, and monotone in grant strength — all 125 triples).
"""

import itertools

import pytest

from repro.runtime.modes import (
    IS,
    IX,
    MODES,
    S,
    SIX,
    X,
    combine,
    compatible,
    grants_read,
    grants_write,
)

# paper §5.1 / Figure 6(b), row-holder x column-requester; every cell
EXPECTED_COMPAT = {
    IS:  {IS: True,  IX: True,  S: True,  SIX: True,  X: False},
    IX:  {IS: True,  IX: True,  S: False, SIX: False, X: False},
    S:   {IS: True,  IX: False, S: True,  SIX: False, X: False},
    SIX: {IS: True,  IX: False, S: False, SIX: False, X: False},
    X:   {IS: False, IX: False, S: False, SIX: False, X: False},
}

# the lattice: IS below everything, IX and S incomparable, SIX above
# both, X on top
LATTICE_LEQ = {
    (a, b): leq
    for a in MODES
    for b in MODES
    for leq in [
        a == b
        or a == IS
        or b == X
        or (a in (IX, S) and b == SIX)
    ]
}


@pytest.mark.parametrize("held", MODES)
@pytest.mark.parametrize("requested", MODES)
def test_compatibility_matches_paper_table(held, requested):
    assert compatible(held, requested) == EXPECTED_COMPAT[held][requested]


def test_compatibility_is_symmetric():
    for a, b in itertools.product(MODES, repeat=2):
        assert compatible(a, b) == compatible(b, a)


def test_is_compatible_with_everything_but_x():
    for mode in MODES:
        assert compatible(IS, mode) == (mode != X)


def test_x_compatible_with_nothing():
    for mode in MODES:
        assert not compatible(X, mode)


# -- combine: the join of the mode lattice -----------------------------------


def test_combine_identity_and_idempotence():
    for mode in MODES:
        assert combine(None, mode) == mode
        assert combine(mode, mode) == mode


def test_combine_commutative():
    for a, b in itertools.product(MODES, repeat=2):
        assert combine(a, b) == combine(b, a)


def test_combine_associative():
    for a, b, c in itertools.product(MODES, repeat=3):
        assert combine(combine(a, b), c) == combine(a, combine(b, c))


def test_combine_is_least_upper_bound():
    """combine(a, b) must be the smallest mode above both a and b."""
    for a, b in itertools.product(MODES, repeat=2):
        join = combine(a, b)
        assert LATTICE_LEQ[(a, join)], f"{join} not above {a}"
        assert LATTICE_LEQ[(b, join)], f"{join} not above {b}"
        for upper in MODES:
            if LATTICE_LEQ[(a, upper)] and LATTICE_LEQ[(b, upper)]:
                assert LATTICE_LEQ[(join, upper)], (
                    f"combine({a},{b})={join} is not least: {upper} is a "
                    f"smaller upper bound"
                )


def test_combine_specific_joins():
    assert combine(IS, IX) == IX
    assert combine(IS, S) == S
    assert combine(IX, S) == SIX  # the defining SIX case
    assert combine(IX, SIX) == SIX
    assert combine(S, SIX) == SIX
    assert combine(IS, SIX) == SIX
    for mode in MODES:
        assert combine(mode, X) == X


def test_combine_monotone_in_grant_strength():
    """Joining can only add permissions, never remove them: whatever a
    grants, combine(a, b) grants too (for reads and writes alike)."""
    for a, b in itertools.product(MODES, repeat=2):
        join = combine(a, b)
        if grants_read(a) or grants_read(b):
            assert grants_read(join)
        if grants_write(a) or grants_write(b):
            assert grants_write(join)


def test_combine_monotone_in_compatibility():
    """Strengthening a held mode can only shrink what stays compatible:
    anything compatible with combine(a, b) is compatible with a alone."""
    for a, b, other in itertools.product(MODES, repeat=3):
        join = combine(a, b)
        if compatible(join, other):
            assert compatible(a, other)
            assert compatible(b, other)


def test_grant_predicates():
    assert [grants_read(m) for m in MODES] == [False, False, True, True, True]
    assert [grants_write(m) for m in MODES] == [False] * 4 + [True]
