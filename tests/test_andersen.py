"""Andersen inclusion-based analysis tests (framework extension)."""

from repro.inference import Engine, LockInference
from repro.cfg import build_cfgs
from repro.lang import lower_program, parse_program
from repro.locks.terms import TPlus, TStar, TVar
from repro.pointer import Andersen, AndersenOracle, PointsTo


def analyses(source):
    program = lower_program(parse_program(source))
    steens = PointsTo(program).analyze()
    andersen = Andersen(program, steens).analyze()
    return program, steens, andersen


def test_address_of():
    _, _, a = analyses("void f(int x, int y) { int* p = &x; int* q = &y; }")
    assert a.points_to("f", "p") == frozenset({("var", "f", "x")})
    assert a.points_to("f", "q") == frozenset({("var", "f", "y")})


def test_copy_propagates_directionally():
    """The inclusion analysis keeps p and q distinct where unification
    merges them."""
    src = """
    void f(int x, int y) {
      int* p = &x;
      int* q = &y;
      int* r = p;
      r = q;
    }
    """
    _, steens, andersen = analyses(src)
    # Andersen: r may point to x or y; p still only to x
    assert andersen.points_to("f", "r") == frozenset(
        {("var", "f", "x"), ("var", "f", "y")}
    )
    assert andersen.points_to("f", "p") == frozenset({("var", "f", "x")})
    # Steensgaard merges the pointees of p, q, r into one class
    assert steens.pts_class(steens.var_ecr("f", "p")) is steens.pts_class(
        steens.var_ecr("f", "q")
    )


def test_load_store_through_heap():
    src = """
    struct e { e* next; }
    void f() {
      e* a = new e;
      e* b = new e;
      a->next = b;
      e* c = a->next;
    }
    """
    _, _, andersen = analyses(src)
    pts_b = andersen.points_to("f", "b")
    pts_c = andersen.points_to("f", "c")
    assert pts_b and pts_b <= pts_c


def test_allocation_sites_field_sensitive():
    src = """
    struct e { e* left; e* right; }
    void f() {
      e* a = new e;
      e* l = new e;
      a->left = l;
      e* got = a->left;
      e* other = a->right;
    }
    """
    _, _, andersen = analyses(src)
    assert andersen.points_to("f", "got") == andersen.points_to("f", "l")
    assert andersen.points_to("f", "other") == frozenset()


def test_calls_flow_arguments_and_returns():
    src = """
    struct e { e* next; }
    e* id(e* p) { return p; }
    void f() { e* a = new e; e* b = id(a); }
    """
    _, _, andersen = analyses(src)
    assert andersen.points_to("f", "b") == andersen.points_to("f", "a")


def test_cells_of_term():
    src = """
    struct e { e* next; }
    void f() { e* a = new e; }
    """
    _, _, andersen = analyses(src)
    cells = andersen.cells_of_term("f", TStar(TVar("a")))
    assert cells == frozenset({("site", 0, None)})
    field_cells = andersen.cells_of_term("f", TPlus(TStar(TVar("a")), "next"))
    assert field_cells == frozenset({("site", 0, "next")})


def test_oracle_is_more_precise_than_steensgaard():
    """x and y point to distinct allocations but share a class after a
    conditional merge through z; Andersen keeps the distinction."""
    src = """
    struct e { int v; }
    void f(int c) {
      e* x = new e;
      e* y = new e;
      e* z = x;
      z = y;
    }
    """
    program, steens, andersen = analyses(src)
    base = AndersenOracle(steens, andersen)
    tx = TStar(TVar("x"))
    ty = TStar(TVar("y"))
    # Steensgaard: same class => may alias
    from repro.pointer import AliasOracle

    assert AliasOracle(steens).may_alias_terms("f", tx, "f", ty)
    # Andersen: distinct allocation sites => no alias
    assert not base.may_alias_terms("f", tx, "f", ty)
    # but z may alias both
    tz = TStar(TVar("z"))
    assert base.may_alias_terms("f", tz, "f", tx)
    assert base.may_alias_terms("f", tz, "f", ty)


def test_engine_accepts_andersen_oracle():
    src = """
    struct obj { int* data; }
    void fig2(obj* y, int* w, int c) {
      obj* x;
      x = null;
      if (c == 0) { x = y; }
      atomic {
        x->data = w;
        int* z = y->data;
        *z = 0;
      }
    }
    void main() { obj* o = new obj; fig2(o, new int, 1); }
    """
    program = lower_program(parse_program(src))
    steens = PointsTo(program).analyze()
    andersen = Andersen(program, steens).analyze()
    cfgs = build_cfgs(program)
    engine = Engine(program, cfgs, steens, k=9,
                    oracle=AndersenOracle(steens, andersen))
    cfg = cfgs["fig2"]
    section = cfg.sections["fig2#1"]
    locks = engine.analyze_section("fig2", section).locks
    fine = {lock.term for lock in locks if lock.is_fine}
    # x may alias y, so the Figure 2 result still holds under Andersen
    assert TStar(TVar("w")) in fine
