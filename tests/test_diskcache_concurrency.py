"""Regression tests for the disk-cache concurrency bugfix sweep.

Each test encodes a bug that shipped before the fix and fails on the
pre-fix code:

* ``_pickle`` raised and restored the *process-global* recursion limit
  with no mutual exclusion, so one thread's ``finally`` clobbered the
  raised limit underneath another thread mid-dump (and the last restorer
  leaked the raised limit);
* ``store_dirty`` merged into the table its instance had read earlier —
  an unlocked read-modify-write that silently dropped entries a
  concurrent writer had landed in between;
* a crashed writer's ``*.tmp.<pid>.*`` litter lived forever, and a torn
  or truncated entry crashed the reader with an unpickling traceback
  instead of degrading to a cache miss.
"""

import multiprocessing
import os
import pickle
import subprocess
import sys
import threading

import pytest

from repro.bench import ALL_BENCHMARKS
from repro.inference import LockInference
from repro.inference import diskcache as dc
from repro.inference.diskcache import (
    AnalysisDiskCache,
    CacheLockTimeout,
    gc_stale_tmp,
)

SALT = "ab" * 32


class FakeEngine:
    """Just enough engine surface for ``store_dirty``."""

    def __init__(self, entries):
        self._entries = dict(entries)
        self.dirty_funcs = {key[1] for key in self._entries}

    def summary_items(self):
        return list(self._entries.items())


def _entry(func, value):
    return {("acc", func, ("ctx",)): value}


# ---------------------------------------------------------------------------
# satellite 1: recursion-limit raise/restore must be one critical section
# ---------------------------------------------------------------------------


def test_pickle_recursion_limit_survives_concurrent_dumps(monkeypatch):
    """Two threads pickling at once: the raised limit must hold for both,
    and the original limit must be restored exactly once at the end.

    Pre-fix, thread A's ``finally`` restored the low limit while thread B
    was still mid-dump, and B's ``finally`` then leaked the raised limit
    into the process for good."""
    limit0 = sys.getrecursionlimit()
    a_in_dump = threading.Event()
    release_a = threading.Event()
    b_in_dump = threading.Event()
    release_b = threading.Event()
    real_dumps = pickle.dumps

    def gated_dumps(value, protocol=None):
        if value == "A":
            a_in_dump.set()
            assert release_a.wait(timeout=30)
        else:
            b_in_dump.set()
            assert release_b.wait(timeout=30)
        return real_dumps(value, protocol)

    monkeypatch.setattr(dc.pickle, "dumps", gated_dumps)
    failures = []

    def run(tag):
        try:
            dc._pickle(tag)
        except Exception as err:  # noqa: BLE001
            failures.append(err)

    thread_a = threading.Thread(target=run, args=("A",))
    thread_a.start()
    assert a_in_dump.wait(timeout=30)
    thread_b = threading.Thread(target=run, args=("B",))
    thread_b.start()
    # A finishes first; post-fix B has been waiting on the pickle lock and
    # only now raises the limit and enters its dump
    release_a.set()
    thread_a.join(timeout=30)
    assert b_in_dump.wait(timeout=30)
    limit_during_b = sys.getrecursionlimit()
    release_b.set()
    thread_b.join(timeout=30)
    assert not failures, failures
    # pre-fix: A's finally had already dropped this back to limit0
    assert limit_during_b >= 100_000
    # pre-fix: B saved the raised limit and "restored" it, leaking 100_000
    assert sys.getrecursionlimit() == limit0


# ---------------------------------------------------------------------------
# satellite 2: store_dirty must not lose concurrent writers' entries
# ---------------------------------------------------------------------------


def test_store_dirty_interleaved_instances_lose_nothing(tmp_path):
    """The deterministic loss repro: both instances read the (empty)
    table, then write one function each.  Pre-fix the second write
    replaced the first instead of merging with it."""
    root = str(tmp_path / "analysis")
    cone = {"f1": "h1", "f2": "h2"}
    cache_a = AnalysisDiskCache(root, cone, SALT)
    cache_b = AnalysisDiskCache(root, cone, SALT)
    cache_a.load_bundle("f1")  # both read the empty table first
    cache_b.load_bundle("f2")
    assert cache_a.store_dirty(FakeEngine(_entry("f1", "va"))) == 1
    assert cache_b.store_dirty(FakeEngine(_entry("f2", "vb"))) == 1

    fresh = AnalysisDiskCache(root, cone, SALT)
    assert fresh.load_bundle("f1") == _entry("f1", "va")
    assert fresh.load_bundle("f2") == _entry("f2", "vb")


def _store_proc(root, func, value, barrier):
    cache = AnalysisDiskCache(root, {func: f"h-{func}"}, SALT)
    cache.load_bundle(func)  # read before anyone writes
    barrier.wait(timeout=30)
    cache.store_dirty(FakeEngine(_entry(func, value)))


def test_store_dirty_two_processes_lose_nothing(tmp_path):
    """The same race across real processes, synchronized past the read."""
    if "fork" not in multiprocessing.get_all_start_methods():
        pytest.skip("needs fork start method")
    ctx = multiprocessing.get_context("fork")
    root = str(tmp_path / "analysis")
    barrier = ctx.Barrier(2)
    procs = [
        ctx.Process(target=_store_proc, args=(root, func, f"v-{func}",
                                              barrier))
        for func in ("f1", "f2")
    ]
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join(timeout=60)
        assert proc.exitcode == 0

    fresh = AnalysisDiskCache(root, {"f1": "h-f1", "f2": "h-f2"}, SALT)
    assert fresh.load_bundle("f1") == _entry("f1", "v-f1")
    assert fresh.load_bundle("f2") == _entry("f2", "v-f2")


def test_store_dirty_lock_timeout_is_counted_not_fatal(tmp_path,
                                                       monkeypatch):
    root = str(tmp_path / "analysis")
    cache = AnalysisDiskCache(root, {"f1": "h1"}, SALT)

    def always_timeout(path, timeout=0):
        raise CacheLockTimeout(path)

    class _TimeoutCtx:
        def __enter__(self):
            raise CacheLockTimeout("held elsewhere")

        def __exit__(self, *exc):
            return False

    monkeypatch.setattr(dc, "_file_lock", lambda *a, **kw: _TimeoutCtx())
    assert cache.store_dirty(FakeEngine(_entry("f1", "v"))) == 0
    assert cache.stats["lock_timeouts"] == 1


def test_file_lock_excludes_and_times_out(tmp_path):
    if dc.fcntl is None:
        pytest.skip("no fcntl on this platform")
    path = str(tmp_path / "x.pkl")
    with dc._file_lock(path):
        with pytest.raises(CacheLockTimeout):
            with dc._file_lock(path, timeout=0.1):
                pass
    # released: immediately acquirable again
    with dc._file_lock(path, timeout=0.1):
        pass


# ---------------------------------------------------------------------------
# satellite 3: tmp-file GC and corrupt-entry tolerance
# ---------------------------------------------------------------------------


def _plant_tmp(root, name, age_s=0.0):
    os.makedirs(root, exist_ok=True)
    path = os.path.join(root, name)
    with open(path, "wb") as handle:
        handle.write(b"half-written")
    if age_s:
        import time

        old = time.time() - age_s
        os.utime(path, (old, old))
    return path


def _dead_pid():
    proc = subprocess.Popen([sys.executable, "-c", "pass"])
    proc.wait()
    return proc.pid


def test_gc_reclaims_orphaned_tmp_files(tmp_path):
    root = str(tmp_path / "analysis")
    dead = _plant_tmp(root, f"a.pkl.tmp.{_dead_pid()}.140001")
    ancient = _plant_tmp(root, f"b.pkl.tmp.{os.getpid()}.140002",
                         age_s=2 * dc.TMP_TTL_S)
    unparseable = _plant_tmp(root, "c.pkl.tmp.notapid")
    fresh_live = _plant_tmp(root, f"d.pkl.tmp.{os.getpid()}.140003")
    removed = gc_stale_tmp(root)
    assert removed == 3
    assert not os.path.exists(dead)
    assert not os.path.exists(ancient)  # live pid, but older than the TTL
    assert not os.path.exists(unparseable)
    assert os.path.exists(fresh_live)  # a writer mid-flight is left alone


def test_open_cache_runs_tmp_gc(tmp_path):
    source = ALL_BENCHMARKS["list"].source
    cache_dir = str(tmp_path / "cache")
    LockInference(source, k=9, cache_dir=cache_dir).run()
    orphan = _plant_tmp(os.path.join(cache_dir, "analysis", "summ"),
                        f"x.pkl.tmp.{_dead_pid()}.1")
    LockInference(source, k=9, cache_dir=cache_dir).run()
    assert not os.path.exists(orphan)


def test_corrupt_entries_degrade_to_miss(tmp_path):
    root = str(tmp_path / "analysis")
    cache = AnalysisDiskCache(root, {"f1": "h1"}, SALT)
    cache.store_dirty(FakeEngine(_entry("f1", "v")))
    path = cache._summ_path()
    with open(path, "wb") as handle:
        handle.write(b"\x80\x04 this is not a pickle")
    fresh = AnalysisDiskCache(root, {"f1": "h1"}, SALT)
    assert fresh.load_bundle("f1") is None  # miss, not a traceback
    assert fresh.stats["corrupt_entries"] == 1
    assert fresh.stats["bundle_misses"] == 1
    assert not os.path.exists(path)  # unlinked so the re-store rewrites it
    # and the store after recomputation works on the cleaned slate
    assert fresh.store_dirty(FakeEngine(_entry("f1", "v2"))) == 1
    assert AnalysisDiskCache(root, {"f1": "h1"},
                             SALT).load_bundle("f1") == _entry("f1", "v2")


def test_truncated_entries_across_whole_cache_never_raise(tmp_path):
    """Corrupt *every* cache file after a warm run: the next run must
    still produce identical results, recomputing what it cannot read."""
    source = ALL_BENCHMARKS["hashtable"].source
    cache_dir = str(tmp_path / "cache")
    cold = LockInference(source, k=9, cache_dir=cache_dir).run()
    corrupted = 0
    for dirpath, _dirnames, filenames in os.walk(cache_dir):
        for filename in filenames:
            if filename.endswith(".pkl"):
                path = os.path.join(dirpath, filename)
                payload = open(path, "rb").read()
                with open(path, "wb") as handle:
                    handle.write(payload[: len(payload) // 2])
                corrupted += 1
    assert corrupted > 0
    before = dc.corrupt_entries_seen()
    rerun = LockInference(source, k=9, cache_dir=cache_dir).run()
    assert rerun.describe() == cold.describe()
    assert dc.corrupt_entries_seen() > before
