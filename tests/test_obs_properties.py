"""Property-based tests for the observability core (`repro.obs`).

Three families of properties pin the algebra the subsystem relies on:

* span nesting — for any tree of ``with tracer.span(...)`` blocks executed
  on any number of threads, the recorded intervals of each thread track are
  well-parenthesized: pairwise disjoint or fully nested, never partially
  overlapping;
* histogram merge — associative and commutative (exact over integer-valued
  observations, where float addition is exact);
* counter snapshots — monotone non-decreasing over any sequence of
  increments, and negative increments are rejected.
"""

import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs.metrics import (
    Counter,
    Histogram,
    InvariantError,
    MetricsRegistry,
)
from repro.obs.trace import Tracer


# A nesting tree: each node is a list of children.
TREES = st.recursive(
    st.just([]),
    lambda kids: st.lists(kids, max_size=3),
    max_leaves=12,
)


def _run_tree(tracer, tree, label):
    for number, child in enumerate(tree):
        with tracer.span(f"{label}.{number}", "test"):
            _run_tree(tracer, child, f"{label}.{number}")


def _well_parenthesized(spans):
    """Every pair of intervals is disjoint or nested (never crossing)."""
    spans = sorted(spans, key=lambda s: (s["start"], -s["dur"]))
    for i, a in enumerate(spans):
        a_end = a["start"] + a["dur"]
        for b in spans[i + 1:]:
            b_end = b["start"] + b["dur"]
            assert (b["start"] >= a_end  # disjoint
                    or b_end <= a_end), (  # nested inside a
                f"crossing spans: {a['name']} and {b['name']}"
            )


@settings(max_examples=40, deadline=None)
@given(tree=TREES)
def test_span_nesting_well_parenthesized(tree):
    tracer = Tracer()
    tracer.configure(True)
    _run_tree(tracer, tree, "root")
    records = tracer.drain()
    assert all(r["event"] == "span" for r in records)
    _well_parenthesized(records)
    # depth bookkeeping survives: every span carries a positive depth
    assert all(r["depth"] >= 1 for r in records)


@settings(max_examples=15, deadline=None)
@given(trees=st.lists(TREES, min_size=2, max_size=3))
def test_span_nesting_per_thread_track(trees):
    """Concurrent threads interleave freely, but each *track* (thread) of
    the shared tracer stays well-parenthesized on its own."""
    tracer = Tracer()
    tracer.configure(True)
    workers = [
        threading.Thread(target=_run_tree, args=(tracer, tree, f"t{i}"))
        for i, tree in enumerate(trees)
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    by_track = {}
    for record in tracer.drain():
        by_track.setdefault(record["track"], []).append(record)
    for spans in by_track.values():
        _well_parenthesized(spans)


# Integer observations keep every float sum exact, so the associativity
# property is genuinely exact rather than approximately-true.
SAMPLES = st.lists(st.integers(min_value=-10**6, max_value=10**6),
                   max_size=40)


def _hist(values):
    hist = Histogram(bounds=(0.0, 10.0, 1000.0))
    for value in values:
        hist.observe(value)
    return hist


@settings(max_examples=60, deadline=None)
@given(a=SAMPLES, b=SAMPLES)
def test_histogram_merge_commutative(a, b):
    assert _hist(a).merge(_hist(b)) == _hist(b).merge(_hist(a))


@settings(max_examples=60, deadline=None)
@given(a=SAMPLES, b=SAMPLES, c=SAMPLES)
def test_histogram_merge_associative(a, b, c):
    ha, hb, hc = _hist(a), _hist(b), _hist(c)
    assert ha.merge(hb).merge(hc) == ha.merge(hb.merge(hc))


@settings(max_examples=60, deadline=None)
@given(a=SAMPLES, b=SAMPLES)
def test_histogram_merge_equals_union(a, b):
    assert _hist(a).merge(_hist(b)) == _hist(a + b)


@settings(max_examples=60, deadline=None)
@given(steps=st.lists(
    st.tuples(st.sampled_from(("hits", "misses")),
              st.integers(min_value=0, max_value=100)),
    max_size=30,
))
def test_counter_snapshots_monotone(steps):
    registry = MetricsRegistry()
    family = registry.counter("cache", ("kind",))
    previous = {}
    for name, amount in steps:
        family.labels(name).inc(amount)
        snapshot = registry.snapshot()["cache"]["values"]
        for key, value in snapshot.items():
            assert value >= previous.get(key, 0), "counter went down"
        previous = snapshot


def test_counter_rejects_negative_increment():
    counter = Counter({}, "x")
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_counter_bundle_rejects_unknown_names():
    registry = MetricsRegistry()
    bundle = registry.counter_bundle("engine", ("steps",))
    bundle["steps"] += 3
    assert bundle["steps"] == 3
    with pytest.raises(KeyError):
        bundle["tpyo"] = 1


def test_invariant_violation_raises_in_debug_mode():
    registry = MetricsRegistry()
    bundle = registry.counter_bundle("engine", ("misses", "stale", "steps"))
    registry.add_invariant(
        "partition",
        lambda reg: bundle["misses"] + bundle["stale"] == bundle["steps"],
        lambda reg: f"{bundle['misses']}+{bundle['stale']} "
                    f"!= {bundle['steps']}",
    )
    bundle["misses"] += 2
    bundle["steps"] += 2
    assert registry.check_invariants() == []
    bundle["stale"] += 1  # breaks the partition
    with pytest.raises(InvariantError):
        registry.check_invariants()
    # non-strict mode reports instead of raising (the python -O behavior)
    failures = registry.check_invariants(strict=False)
    assert len(failures) == 1 and "partition" in failures[0]
