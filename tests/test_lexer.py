"""Tokenizer tests."""

import pytest

from repro.lang.lexer import LexError, Token, tokenize


def kinds(source):
    return [(t.kind, t.text) for t in tokenize(source) if t.kind != "eof"]


def test_empty_input_yields_only_eof():
    tokens = tokenize("")
    assert len(tokens) == 1
    assert tokens[0].kind == "eof"


def test_identifiers_and_keywords():
    assert kinds("while foo atomic bar_2") == [
        ("kw", "while"),
        ("ident", "foo"),
        ("kw", "atomic"),
        ("ident", "bar_2"),
    ]


def test_numbers():
    assert kinds("0 42 1234567") == [("int", "0"), ("int", "42"), ("int", "1234567")]


def test_two_char_operators_take_precedence():
    assert [t for _, t in kinds("a->b == c != d <= e >= f && g || h")] == [
        "a", "->", "b", "==", "c", "!=", "d", "<=", "e", ">=", "f", "&&", "g",
        "||", "h",
    ]


def test_single_char_operators():
    assert [t for _, t in kinds("*x = &y + z % w;")] == [
        "*", "x", "=", "&", "y", "+", "z", "%", "w", ";",
    ]


def test_line_comments_are_skipped():
    assert kinds("a // comment here\nb") == [("ident", "a"), ("ident", "b")]


def test_block_comments_are_skipped():
    assert kinds("a /* multi\nline */ b") == [("ident", "a"), ("ident", "b")]


def test_unterminated_block_comment_raises():
    with pytest.raises(LexError):
        tokenize("a /* never closed")


def test_line_numbers_tracked():
    tokens = tokenize("a\nb\n\nc")
    lines = {t.text: t.line for t in tokens if t.kind == "ident"}
    assert lines == {"a": 1, "b": 2, "c": 4}


def test_unknown_character_raises_with_line():
    with pytest.raises(LexError) as err:
        tokenize("a\n@")
    assert err.value.line == 2


def test_dollar_names_allowed():
    assert kinds("$t1") == [("ident", "$t1")]
