"""Program validator tests."""

import pytest

from repro.lang import parse_program
from repro.lang.validate import ValidationError, validate_program


def check(source, **kw):
    return validate_program(parse_program(source), strict=False, **kw)


def assert_clean(source):
    assert check(source) == []


def test_clean_program():
    assert_clean(
        """
        struct e { e* next; int v; }
        e* G;
        void f(e* p) { p->v = 1; }
        void main() { G = new e; f(G); }
        """
    )


def test_unknown_function():
    diags = check("void main() { mystery(); }")
    assert any("unknown function" in str(d) for d in diags)


def test_external_functions_allowed():
    diags = check("void main() { mystery(); }",
                  external_functions={"mystery"})
    assert diags == []


def test_arity_mismatch():
    diags = check("void f(int a, int b) { }\nvoid main() { f(1); }")
    assert any("expected 2" in str(d) for d in diags)


def test_unknown_field():
    diags = check(
        "struct e { int v; }\nvoid main() { e* x = new e; x->w = 1; }"
    )
    assert any("unknown field 'w'" in str(d) for d in diags)


def test_unknown_struct_in_type():
    diags = check("void main() { ghost* p = null; }")
    assert any("unknown struct" in str(d) for d in diags)


def test_unknown_struct_in_new():
    diags = check("struct e { int v; }\nvoid main() { e* x = new ghost; }")
    assert any("new of unknown struct" in str(d) for d in diags)


def test_duplicate_field():
    diags = check("struct e { int v; int v; }\nvoid main() { }")
    assert any("duplicate field" in str(d) for d in diags)


def test_global_function_name_clash():
    diags = check("int f;\nvoid f() { }\nvoid main() { }")
    assert any("both a global and a function" in str(d) for d in diags)


def test_return_inside_atomic_flagged():
    diags = check("int main() { atomic { return 1; } }")
    assert any("return inside an atomic" in str(d) for d in diags)


def test_strict_mode_raises():
    with pytest.raises(ValidationError) as err:
        validate_program(parse_program("void main() { mystery(); }"))
    assert "unknown function" in str(err.value)


def test_benchmark_sources_validate_cleanly():
    from repro.bench import ALL_BENCHMARKS

    for spec in ALL_BENCHMARKS.values():
        assert validate_program(parse_program(spec.source), strict=False) == []
