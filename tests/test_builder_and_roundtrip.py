"""AST builder tests plus a hypothesis printer/parser round-trip fuzz."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.inference import infer_locks
from repro.lang import ast, parse_program, print_program
from repro.lang.builder import (
    addr,
    assign,
    atomic,
    binop,
    call,
    decl,
    deref,
    expr_stmt,
    field,
    func,
    global_,
    if_,
    index,
    lit,
    new,
    nop,
    not_,
    null,
    program,
    ret,
    struct,
    var,
    while_,
)


def test_builder_constructs_runnable_program():
    prog = program(
        struct("node", ("node*", "next"), ("int", "v")),
        global_("node*", "G"),
        func(
            "void", "push", [("int", "x")],
            atomic(
                decl("node*", "n", new("node")),
                assign(field(var("n"), "v"), var("x")),
                assign(field(var("n"), "next"), var("G")),
                assign(var("G"), var("n")),
            ),
        ),
        func("void", "main", [], expr_stmt(call("push", lit(1)))),
    )
    # text round trip
    text = print_program(prog)
    reparsed = parse_program(text)
    assert print_program(reparsed) == text
    # and the analysis handles it
    result = infer_locks(prog, k=9)
    locks = result.locks_for("push#1").locks
    assert any(lock.is_fine for lock in locks)


def test_builder_control_flow():
    prog = program(
        func(
            "int", "f", [("int", "n")],
            decl("int", "i", lit(0)),
            decl("int", "total", lit(0)),
            while_(
                binop("<", var("i"), var("n")),
                if_(
                    binop("==", binop("%", var("i"), lit(2)), lit(0)),
                    [assign(var("total"), binop("+", var("total"), var("i")))],
                    [nop(1)],
                ),
                assign(var("i"), binop("+", var("i"), lit(1))),
            ),
            ret(var("total")),
        ),
    )
    text = print_program(prog)
    assert parse_program(text).functions["f"].param_names == ["n"]


def test_builder_pointer_helpers():
    expr = addr(field(deref(var("p")), "next"))
    assert isinstance(expr, ast.AddrOf)
    arr = index(var("a"), binop("+", var("i"), lit(1)))
    assert isinstance(arr, ast.IndexAccess)
    assert isinstance(not_(null()), ast.Unary)


# ---------------------------------------------------------------------------
# round-trip fuzz: random expressions through print -> parse -> print
# ---------------------------------------------------------------------------

_names = st.sampled_from(["a", "b", "c", "p", "q"])


def _expr_strategy():
    base = st.one_of(
        _names.map(ast.Var),
        st.integers(0, 99).map(ast.IntLit),
        st.just(ast.Null()),
    )

    def extend(children):
        return st.one_of(
            st.tuples(children).map(lambda t: ast.Deref(t[0])),
            st.tuples(children, st.sampled_from(["next", "data", "v"])).map(
                lambda t: ast.FieldAccess(t[0], t[1])
            ),
            st.tuples(children, children).map(
                lambda t: ast.IndexAccess(t[0], t[1])
            ),
            st.tuples(
                st.sampled_from(["+", "-", "*", "==", "!=", "<", "&&", "||"]),
                children,
                children,
            ).map(lambda t: ast.Binary(t[0], t[1], t[2])),
            st.tuples(children).map(lambda t: ast.Unary("!", t[0])),
        )

    return st.recursive(base, extend, max_leaves=12)


@given(expr=_expr_strategy())
@settings(max_examples=300, deadline=None)
def test_expression_print_parse_roundtrip(expr):
    """print(parse(print(e))) == print(e): the printer emits syntax the
    parser maps back to the same tree (modulo the printer's parentheses)."""
    from repro.lang.parser import parse_expr

    text = str(expr)
    reparsed = parse_expr(text)
    assert str(reparsed) == text
