"""Pre-compiled library specification tests (paper §4.3 extension)."""

import pytest

from repro.inference import (
    ExternalSpec,
    SpecLibrary,
    infer_locks,
    reachable_classes,
)
from repro.lang import lower_program, parse_program
from repro.locks import RO, RW
from repro.locks.terms import TPlus, TStar, TVar
from repro.pointer import PointsTo


def test_spec_validation():
    ExternalSpec("f", param_effects=("ro", "rw", "none"), returns="fresh")
    ExternalSpec("g", returns="param:0")
    with pytest.raises(ValueError):
        ExternalSpec("bad", param_effects=("write",))
    with pytest.raises(ValueError):
        ExternalSpec("bad", returns="whatever")


def test_spec_library():
    lib = SpecLibrary([ExternalSpec("a"), ExternalSpec("b")])
    assert "a" in lib and "c" not in lib
    assert len(lib) == 2
    lib.add(ExternalSpec("c"))
    assert lib.get("c") is not None


SRC = """
struct e { e* next; int v; }
e* G;
void f() {
  atomic {
    ext_touch(G);
    G->v = 1;
  }
}
void main() { G = new e; f(); }
"""


def test_without_spec_unknown_call_is_global():
    result = infer_locks(SRC, k=9)
    locks = result.locks_for("f#1").locks
    assert any(lock.is_global for lock in locks)


def test_spec_replaces_global_with_reachable_coarse():
    specs = SpecLibrary(
        [ExternalSpec("ext_touch", param_effects=("rw",), returns="unknown")]
    )
    result = infer_locks(SRC, k=9, specs=specs)
    locks = result.locks_for("f#1").locks
    assert not any(lock.is_global for lock in locks)
    assert any(lock.is_coarse and lock.eff == RW for lock in locks)


def test_readonly_spec_gets_read_locks():
    src = SRC.replace("G->v = 1;", "int r = G->v;")
    specs = SpecLibrary(
        [ExternalSpec("ext_touch", param_effects=("ro",), returns="unknown")]
    )
    result = infer_locks(src, k=9, specs=specs)
    locks = result.locks_for("f#1").locks
    assert locks
    assert all(lock.eff == RO for lock in locks)


def test_pure_spec_preserves_fine_locks():
    """A callee that touches nothing must not disturb fine-grain terms."""
    src = """
    struct e { e* next; int v; }
    e* G;
    void f() {
      atomic {
        int t = ext_pure(3);
        G->v = t;
      }
    }
    void main() { G = new e; f(); }
    """
    specs = SpecLibrary(
        [ExternalSpec("ext_pure", param_effects=("none",), returns="unknown")]
    )
    result = infer_locks(src, k=9, specs=specs)
    locks = result.locks_for("f#1").locks
    fine = {lock.term for lock in locks if lock.is_fine}
    assert TPlus(TStar(TVar("G")), "v") in fine
    assert not any(lock.is_global for lock in locks)


def test_writing_spec_coarsens_crossing_terms():
    """Fine-grain terms whose cells the external callee may rewrite must be
    widened to their class lock (the paper's stated rule)."""
    src = """
    struct e { e* next; int v; }
    e* G;
    void f() {
      atomic {
        ext_scramble(G);
        e* n = G->next;
        n->v = 2;
      }
    }
    void main() { G = new e; G->next = new e; f(); }
    """
    specs = SpecLibrary(
        [ExternalSpec("ext_scramble", param_effects=("rw",), returns="unknown")]
    )
    result = infer_locks(src, k=9, specs=specs)
    locks = result.locks_for("f#1").locks
    # the n->v write is protected, but only by coarse locks: the fine path
    # G->next could have been redirected by ext_scramble
    assert any(lock.is_coarse and lock.eff == RW for lock in locks)
    assert not any(lock.is_global for lock in locks)


def test_fresh_return_drops_result_terms():
    src = """
    struct e { e* next; int v; }
    void f() {
      atomic {
        e* n = ext_alloc();
        n->v = 1;
      }
    }
    void main() { f(); }
    """
    specs = SpecLibrary([ExternalSpec("ext_alloc", returns="fresh")])
    result = infer_locks(src, k=9, specs=specs)
    assert result.locks_for("f#1").locks == frozenset()


def test_param_return_rebinds_result_terms():
    src = """
    struct e { e* next; int v; }
    e* G;
    void f() {
      atomic {
        e* n = ext_pick(G);
        n->v = 1;
      }
    }
    void main() { G = new e; f(); }
    """
    specs = SpecLibrary(
        [ExternalSpec("ext_pick", param_effects=("ro",), returns="param:0")]
    )
    result = infer_locks(src, k=9, specs=specs)
    locks = result.locks_for("f#1").locks
    fine = {lock.term for lock in locks if lock.is_fine}
    # n is (reachable from) G: the write traces to *Ḡ's v field... the
    # rebinding makes n's content expressible as *Ḡ
    assert TPlus(TStar(TVar("G")), "v") in fine


def test_reachable_classes_traverses_structure():
    src = """
    struct e { e* next; int* data; }
    void f(e* p) { e* q = p->next; int* d = p->data; }
    void main() { e* a = new e; a->next = a; a->data = new int; f(a); }
    """
    program = lower_program(parse_program(src))
    pt = PointsTo(program).analyze()
    start = pt.pts_class(pt.var_ecr("f", "p"))
    classes = reachable_classes(pt, start)
    assert len(classes) >= 3  # base cells, next cells, data cells, int cells
