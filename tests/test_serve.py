"""The long-lived analysis service: protocol, server semantics, drain.

Guarantee families:

* **protocol** — framing round-trips, clean-EOF vs torn-frame handling,
  envelope validation, closed error-code set;
* **equivalence** — N concurrent client threads against one server, over
  every corpus benchmark and k ∈ {0, 1, 9}, produce responses identical
  to a fresh single-shot :class:`LockInference` run, and repeats are
  served from warm state (``memo``; after a flush, ``warm`` with zero
  dataflow steps — the disk cache answers everything);
* **operational semantics** — bounded queue answers ``backpressure``
  when full, per-request deadlines surface as structured ``deadline``
  errors, ``flush`` drops resident state without breaking correctness,
  ``shutdown``/SIGTERM drain gracefully (queued work finishes, the
  socket file disappears, the event stream ends with ``serve-stop``).
"""

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro.bench import ALL_BENCHMARKS
from repro.inference import LockInference
from repro.obs.events import validate_event
from repro.serve import AnalysisServer, ServeClient, ServeError, protocol
from repro.serve.client import fetch_inference

KS = (0, 1, 9)

SRC = os.path.join(os.path.dirname(__file__), "..", "src")


@pytest.fixture()
def server(tmp_path):
    """A started server on a per-test Unix socket; drained on teardown."""
    srv = AnalysisServer(
        socket_path=str(tmp_path / "serve.sock"),
        cache_dir=str(tmp_path / "cache"),
        max_inflight=2,
        events_path=str(tmp_path / "events.jsonl"),
    )
    srv.start()
    yield srv
    assert srv.stop(timeout=30), "server failed to drain"


def _client(server):
    return ServeClient(socket_path=server.socket_path)


# ---------------------------------------------------------------------------
# protocol
# ---------------------------------------------------------------------------


def test_framing_roundtrip():
    left, right = socket.socketpair()
    try:
        message = {"v": 1, "kind": "status", "id": "abc",
                   "payload": ["x", 1, {"y": None}]}
        protocol.send_message(left, message)
        assert protocol.recv_message(right) == message
    finally:
        left.close()
        right.close()


def test_clean_eof_is_none_torn_frame_raises():
    left, right = socket.socketpair()
    left.close()
    assert protocol.recv_message(right) is None
    right.close()

    left, right = socket.socketpair()
    try:
        left.sendall(b"\x00\x00\x00\x10part")  # 16-byte frame, 4 sent
        left.close()
        with pytest.raises(protocol.ProtocolError):
            protocol.recv_message(right)
    finally:
        right.close()


def test_oversized_and_nonjson_frames_raise():
    left, right = socket.socketpair()
    try:
        left.sendall(b"\xff\xff\xff\xff")  # 4 GiB frame announcement
        with pytest.raises(protocol.ProtocolError):
            protocol.recv_message(right)
    finally:
        left.close()
        right.close()

    left, right = socket.socketpair()
    try:
        payload = b"not json"
        import struct

        left.sendall(struct.pack(">I", len(payload)) + payload)
        with pytest.raises(protocol.ProtocolError):
            protocol.recv_message(right)
    finally:
        left.close()
        right.close()


def test_envelopes_and_error_codes():
    req = protocol.request("analyze", source="x")
    assert req["v"] == protocol.PROTOCOL_VERSION
    assert req["kind"] == "analyze" and req["id"]
    with pytest.raises(ValueError):
        protocol.request("frobnicate")
    with pytest.raises(ValueError):
        protocol.error_response("id", "not-a-code")
    ok = protocol.ok_response("id", x=1)
    assert protocol.check_response(ok)["x"] == 1
    err = protocol.error_response("id", "backpressure", "full")
    with pytest.raises(ServeError) as caught:
        protocol.check_response(err)
    assert caught.value.code == "backpressure"


# ---------------------------------------------------------------------------
# equivalence: concurrent clients vs single-shot inference
# ---------------------------------------------------------------------------


def _expected(source, k):
    result = LockInference(source, k=k).run()
    counts = result.lock_counts()
    return result.describe(), {
        "fine_ro": counts.fine_ro, "fine_rw": counts.fine_rw,
        "coarse_ro": counts.coarse_ro, "coarse_rw": counts.coarse_rw,
        "global_locks": counts.global_locks,
    }


def test_concurrent_clients_match_single_shot(server):
    """N client threads, every corpus benchmark × k, vs local inference."""
    jobs = [(spec.source, k)
            for spec in ALL_BENCHMARKS.values() for k in KS]
    responses = {}
    errors = []

    def worker(worker_id):
        try:
            with _client(server) as client:
                for index, (source, k) in enumerate(jobs):
                    if index % 3 != worker_id % 3:
                        continue
                    response = client.analyze(source, k=k)
                    responses[(worker_id, index)] = response
        except Exception as err:  # noqa: BLE001 - collected for the assert
            errors.append(err)

    threads = [threading.Thread(target=worker, args=(n,)) for n in range(6)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors, errors

    for (worker_id, index), response in responses.items():
        source, k = jobs[index]
        sections, counts = _expected(source, k)
        assert response["sections"] == sections, (worker_id, index)
        assert response["counts"] == counts
        assert response["served"] in ("memo", "warm", "computed")

    # two workers hit every job index (6 workers mod 3), so every job was
    # requested at least twice: repeats must come from warm state
    with _client(server) as client:
        for source, k in jobs:
            repeat = client.analyze(source, k=k)
            assert repeat["served"] == "memo"


def test_flush_then_warm_hits_run_zero_dataflow_steps(server):
    source = ALL_BENCHMARKS["hashtable"].source
    with _client(server) as client:
        first = client.analyze(source, k=9)
        assert first["served"] == "computed"
        assert first["profile"]["dataflow_steps"] > 0
        flushed = client.flush()["flushed"]
        assert flushed == {"fronts": 1, "results": 1}
        warm = client.analyze(source, k=9)
        # resident memo is gone; the disk cache answers every summary and
        # section, so the solve replays with zero transfer executions
        assert warm["served"] == "warm"
        assert warm["profile"]["dataflow_steps"] == 0
        assert warm["sections"] == first["sections"]
        assert warm["counts"] == first["counts"]


def test_fetch_inference_returns_working_result(server):
    source = ALL_BENCHMARKS["list"].source
    result = fetch_inference(source, 9, socket_path=server.socket_path)
    local = LockInference(source, k=9).run()
    assert result.describe() == local.describe()
    assert result.k == 9
    # and a second fetch serves from the memoized result object
    with _client(server) as client:
        assert client.analyze(source, k=9,
                              want_pickle=True)["served"] == "memo"


# ---------------------------------------------------------------------------
# operational semantics
# ---------------------------------------------------------------------------


def test_backpressure_when_queue_full(tmp_path):
    release = threading.Event()
    entered = threading.Event()

    def slow_analyzer(source, k, use_effects):
        entered.set()
        release.wait(timeout=30)
        return {"sections": "", "counts": {}, "analysis_time": 0.0,
                "pointer_time": 0.0, "dataflow_time": 0.0, "profile": None}

    server = AnalysisServer(socket_path=str(tmp_path / "s.sock"),
                            max_inflight=1, queue_depth=1,
                            analyzer=slow_analyzer)
    server.start()
    try:
        blocker = ServeClient(socket_path=server.socket_path)
        waiter = ServeClient(socket_path=server.socket_path)
        overflow = ServeClient(socket_path=server.socket_path)
        try:
            # occupy the one worker...
            protocol.send_message(blocker._sock,
                                  protocol.request("analyze", source="a"))
            assert entered.wait(timeout=10)
            # ...fill the one queue slot...
            protocol.send_message(waiter._sock,
                                  protocol.request("analyze", source="b"))
            deadline = time.monotonic() + 10
            while server._queue.qsize() < 1:
                assert time.monotonic() < deadline
                time.sleep(0.01)
            # ...and the next request must bounce, immediately
            with pytest.raises(ServeError) as caught:
                overflow.analyze("c")
            assert caught.value.code == "backpressure"
            release.set()
            assert protocol.check_response(
                protocol.recv_message(blocker._sock))["served"]
            assert protocol.check_response(
                protocol.recv_message(waiter._sock))["served"]
        finally:
            blocker.close()
            waiter.close()
            overflow.close()
    finally:
        release.set()
        assert server.stop(timeout=30)


def test_deadline_surfaces_as_structured_error(server):
    source = ALL_BENCHMARKS["vacation"].source
    with _client(server) as client:
        with pytest.raises(ServeError) as caught:
            client.analyze(source, k=9, deadline_s=0.0)
        assert caught.value.code == "deadline"
        # the worker is fine afterwards: the same request with a sane
        # deadline succeeds on the same connection
        assert client.analyze(source, k=9)["served"] == "computed"


def test_bad_requests_are_structured_not_fatal(server):
    with _client(server) as client:
        with pytest.raises(ServeError) as caught:
            client.request("analyze")  # no source
        assert caught.value.code == "bad-request"
        with pytest.raises(ServeError) as caught:
            client.request("analyze", source="x", k=-2)
        assert caught.value.code == "bad-request"
        protocol.send_message(client._sock,
                              {"v": 99, "kind": "status", "id": "z"})
        response = protocol.recv_message(client._sock)
        assert response["ok"] is False
        assert response["error"] == "bad-request"
        # the connection survived all three
        assert client.status()["requests"] >= 0


def test_status_reports_warm_state(server):
    source = ALL_BENCHMARKS["kmeans"].source
    with _client(server) as client:
        client.analyze(source, k=0)
        client.analyze(source, k=1)
        status = client.status()
    assert status["warm_fronts"] == 1  # one source, one shared front
    assert status["warm_results"] == 2  # two (source, k) results
    assert status["max_inflight"] == 2
    assert not status["draining"]
    latency = status["metrics"]["serve.latency"]["values"]["analyze"]
    assert latency["count"] == 2


def test_shutdown_drains_and_event_stream_validates(tmp_path):
    events_path = tmp_path / "events.jsonl"
    server = AnalysisServer(socket_path=str(tmp_path / "s.sock"),
                            cache_dir=str(tmp_path / "cache"),
                            events_path=str(events_path))
    server.start()
    source = ALL_BENCHMARKS["rbtree"].source
    with ServeClient(socket_path=server.socket_path) as client:
        client.analyze(source, k=9)
        client.shutdown()
    assert server._stopped.wait(timeout=30)
    assert not os.path.exists(server.socket_path)
    records = [json.loads(line)
               for line in events_path.read_text().splitlines()]
    for record in records:
        validate_event(record)  # every serve event is a valid v1 envelope
    kinds = [record["event"] for record in records]
    assert kinds[0] == "serve-start"
    assert kinds[-1] == "serve-stop"
    stop = records[-1]
    assert stop["drained"] is True
    assert stop["requests"] >= 2
    finishes = [r for r in records if r["event"] == "request-finish"]
    assert {f["served"] for f in finishes} <= {"computed", "memo", "warm",
                                               "inline"}


def test_sigterm_drains_subprocess(tmp_path):
    """A real ``repro serve`` process exits 0 on SIGTERM, removing the
    socket and closing the stream with ``serve-stop``."""
    sock = str(tmp_path / "s.sock")
    events = str(tmp_path / "ev.jsonl")
    env = dict(os.environ, PYTHONPATH=SRC)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--socket", sock,
         "--cache-dir", str(tmp_path / "cache"), "--events", events],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE)
    try:
        deadline = time.monotonic() + 30
        while not os.path.exists(sock):
            assert time.monotonic() < deadline, "server never bound"
            assert proc.poll() is None, proc.stderr.read().decode()
            time.sleep(0.05)
        with ServeClient(socket_path=sock) as client:
            response = client.analyze(ALL_BENCHMARKS["TH"].source, k=9)
            assert response["served"] == "computed"
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=30) == 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
    assert not os.path.exists(sock)
    kinds = [json.loads(line)["event"]
             for line in open(events).read().splitlines()]
    assert kinds[-1] == "serve-stop"
