"""Cross-layer consistency: the runtime's mode discipline must refine the
concrete lock semantics' `conflict` relation (paper §3.2 vs §5.1).

If the denotations of two lock sets conflict (they protect a common cell and
one allows writes), the runtime must never grant both plans fully at once;
if they do not conflict, granting both must always be possible. Checked
exhaustively over small lock-set combinations and by a hypothesis sweep.
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.locks import (
    ALL,
    Denotation,
    RO,
    RW,
    TStar,
    TVar,
    coarse_lock,
    conflict,
    fine_lock,
    global_lock,
)
from repro.runtime import LockManager
from repro.runtime.api import plan_requests


class FakeObj:
    def __init__(self, oid):
        self.oid = oid
        self.shared = True


class FakeLoc:
    def __init__(self, oid, off):
        self.obj = FakeObj(oid)
        self.key = (oid, off)


# a small universe: 2 classes, 2 cells per class
CELLS = {1: [FakeLoc(10, "f"), FakeLoc(11, "f")],
         2: [FakeLoc(20, "f"), FakeLoc(21, "f")]}
CLASS_CELLS = {cls: frozenset(loc.key for loc in locs)
               for cls, locs in CELLS.items()}
ALL_CELLS = frozenset().union(*CLASS_CELLS.values())


def denote(lock, loc=None):
    """Concrete denotation of one lock in the small universe."""
    if lock.is_global:
        return Denotation(ALL_CELLS, lock.eff)
    if lock.is_coarse:
        return Denotation(CLASS_CELLS[lock.cls], lock.eff)
    return Denotation(frozenset({loc.key}), lock.eff)


def lockset_universe():
    """All single-lock plans over the universe (with their denotations)."""
    plans = []
    for eff in (RO, RW):
        plans.append(((global_lock(eff),), None, denote(global_lock(eff))))
        for cls in (1, 2):
            lock = coarse_lock(cls, eff)
            plans.append(((lock,), None, denote(lock)))
            for loc in CELLS[cls]:
                fine = fine_lock(TStar(TVar("x")), cls, eff, "f")
                plans.append(((fine,), loc, denote(fine, loc)))
    return plans


def grants_fully(manager, tid, locks, loc):
    ordered = plan_requests(locks, lambda lock: loc)
    for name, mode in ordered:
        if not manager.try_acquire_node(tid, name, mode):
            return False
    return True


def test_conflicting_plans_never_both_granted():
    for (locks_a, loc_a, den_a), (locks_b, loc_b, den_b) in itertools.product(
        lockset_universe(), repeat=2
    ):
        manager = LockManager()
        assert grants_fully(manager, 0, locks_a, loc_a)
        got_b = grants_fully(manager, 1, locks_b, loc_b)
        if conflict(den_a, den_b):
            assert not got_b, (locks_a, locks_b)


def test_nonconflicting_plans_coexist():
    for (locks_a, loc_a, den_a), (locks_b, loc_b, den_b) in itertools.product(
        lockset_universe(), repeat=2
    ):
        if conflict(den_a, den_b):
            continue
        manager = LockManager()
        assert grants_fully(manager, 0, locks_a, loc_a)
        assert grants_fully(manager, 1, locks_b, loc_b), (locks_a, locks_b)


@given(
    choice=st.lists(st.integers(0, 13), min_size=2, max_size=4),
)
@settings(max_examples=100, deadline=None)
def test_many_thread_grants_respect_pairwise_conflicts(choice):
    universe = lockset_universe()
    manager = LockManager()
    granted = []
    for tid, idx in enumerate(choice):
        locks, loc, den = universe[idx % len(universe)]
        if grants_fully(manager, tid, locks, loc):
            granted.append(den)
    for a, b in itertools.combinations(granted, 2):
        assert not conflict(a, b)
