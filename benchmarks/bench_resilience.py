"""Resilience benchmark: recovery latency, degraded throughput, chaos.

Exercises the ``repro.runtime.resilience`` layer end to end and writes
``BENCH_resilience.json`` at the repo root:

* **recovery latency** — for each stall-shaped fault kind, chaos runs
  with recovery enabled; reports aborts, recoveries, and the tick
  distance from first stall detection to the successful retry commit;
* **degraded throughput** — a parallel workload (hashtable) under the
  inferred fine+coarse plans, the same plans force-degraded to the
  single global lock (``start_degraded``), the native global-lock
  config, and the STM baseline; degraded mode must track the native
  global-lock makespan;
* **watchdog overhead** — a clean (fault-free) run with the watchdog
  armed must be tick-for-tick identical to the unarmed run (the
  watchdog observes, it never perturbs a healthy schedule);
* **chaos matrix** — every stall fault kind under random + PCT
  schedules: recovery-enabled runs terminate with the sequential
  fingerprint; recovery-disabled runs reproduce the deadlock/livelock
  canaries.

Run standalone (``python benchmarks/bench_resilience.py [--quick]``,
``--quick`` = CI smoke: fewer seeds, canary search skipped) or under
pytest (``pytest benchmarks/bench_resilience.py``).
"""

import json
import os
import sys
import time

sys.path.insert(0, os.path.dirname(__file__))

from conftest import emit_report  # noqa: E402
from repro.explore import chaos_cell, chaos_suite  # noqa: E402
from repro.explore.chaos import (  # noqa: E402
    CHAOS_FAULT_KINDS,
    DEFAULT_PROGRAM_FOR_FAULT,
)
from repro.explore.runner import resolve_target, run_schedule  # noqa: E402
from repro.runtime.resilience import ResilienceConfig  # noqa: E402
from repro.sim import make_policy  # noqa: E402

JSON_PATH = os.path.join(
    os.path.dirname(__file__), "..", "BENCH_resilience.json"
)

# degraded mode runs the same single-node [(ROOT, X)] plan the native
# global config runs; its makespan may drift only by this factor
DEGRADED_VS_GLOBAL_BAR = 2.0

# effectively-infinite lease for fault-free throughput runs: under the
# global lock, section-open time includes the queue wait, which is not
# a stall
NO_LEASE = 1_000_000_000


def recovery_latency(quick: bool):
    seeds = range(2 if quick else 4)
    rows = {}
    for fault in CHAOS_FAULT_KINDS:
        target = resolve_target(DEFAULT_PROGRAM_FOR_FAULT[fault])
        outcome = chaos_cell(target, fault, "random", seeds=seeds,
                             check_canary=False)
        latencies = outcome.recovery_latencies
        rows[fault] = {
            "program": target.name,
            "runs": len(outcome.seeds),
            "recovered_runs": outcome.recovered_runs,
            "aborts": outcome.stats.get("aborts", 0),
            "recoveries": outcome.stats.get("recoveries", 0),
            "fault_firings": outcome.fault_firings,
            "latency_mean_ticks": (
                round(sum(latencies) / len(latencies), 1)
                if latencies else None
            ),
            "latency_max_ticks": max(latencies) if latencies else None,
        }
    return rows


def _timed_run(target, config, threads, ops, resilience=None):
    started = time.perf_counter()
    record, world = run_schedule(
        target, config, make_policy("rr"),
        threads=threads, ops=ops, seed=0,
        detector=False, check=False, audit=False,
        resilience=resilience,
    )
    elapsed = time.perf_counter() - started
    assert not record.violations, (config, record.violations)
    return record, world, elapsed


def degraded_throughput(quick: bool):
    target = resolve_target("hashtable")
    threads, ops = 4, (4 if quick else 8)
    total_ops = threads * ops

    fine, _, _ = _timed_run(target, "fine+coarse", threads, ops)
    degraded_cfg = ResilienceConfig(start_degraded=True,
                                    lease_ticks=NO_LEASE)
    degraded, world, _ = _timed_run(target, "fine+coarse", threads, ops,
                                    resilience=degraded_cfg)
    glob, _, _ = _timed_run(target, "global", threads, ops)
    stm, _, _ = _timed_run(target, "stm", threads, ops)

    stats = world.resilience.stats
    rows = {
        "program": target.name,
        "threads": threads,
        "ops_per_thread": ops,
        "fine_ticks": fine.ticks,
        "degraded_ticks": degraded.ticks,
        "global_ticks": glob.ticks,
        "stm_ticks": stm.ticks,
        "degraded_aborts": stats.aborts,
        "fine_throughput": round(total_ops / fine.ticks, 5),
        "degraded_throughput": round(total_ops / degraded.ticks, 5),
        "global_throughput": round(total_ops / glob.ticks, 5),
        "stm_throughput": round(total_ops / stm.ticks, 5),
        "degraded_vs_global_x": round(degraded.ticks / glob.ticks, 3),
        "bar_x": DEGRADED_VS_GLOBAL_BAR,
    }
    return rows


def watchdog_overhead(quick: bool):
    target = resolve_target("counter")
    threads, ops = 3, (4 if quick else 8)
    bare, _, bare_s = _timed_run(target, "fine+coarse", threads, ops)
    config = ResilienceConfig(lease_ticks=NO_LEASE)
    armed, world, armed_s = _timed_run(target, "fine+coarse", threads, ops,
                                       resilience=config)
    return {
        "program": target.name,
        "bare_ticks": bare.ticks,
        "armed_ticks": armed.ticks,
        "tick_parity": bare.ticks == armed.ticks,
        "armed_aborts": world.resilience.stats.aborts,
        "bare_s": round(bare_s, 4),
        "armed_s": round(armed_s, 4),
    }


def chaos_matrix(quick: bool):
    report = chaos_suite(
        schedules=1 if quick else 2,
        check_canary=not quick,
    )
    return report.to_dict()


def measure(quick: bool = False):
    return {
        "benchmark": "runtime-resilience",
        "quick": quick,
        "recovery_latency": recovery_latency(quick),
        "degraded_throughput": degraded_throughput(quick),
        "watchdog_overhead": watchdog_overhead(quick),
        "chaos": chaos_matrix(quick),
    }


def render(report) -> str:
    lines = [f"{'Fault kind':18s} {'recovered':>9s} {'aborts':>6s} "
             f"{'latency mean':>12s} {'latency max':>11s}"]
    for kind, row in sorted(report["recovery_latency"].items()):
        mean = row["latency_mean_ticks"]
        lines.append(
            f"{kind:18s} {row['recovered_runs']:>4d}/{row['runs']:<4d} "
            f"{row['aborts']:6d} "
            f"{(str(mean) if mean is not None else '-'):>12s} "
            f"{(str(row['latency_max_ticks'] or '-')):>11s}"
        )
    dt = report["degraded_throughput"]
    lines.append("")
    lines.append(
        f"throughput ({dt['program']}, ops/tick): "
        f"fine={dt['fine_throughput']} degraded={dt['degraded_throughput']} "
        f"global={dt['global_throughput']} stm={dt['stm_throughput']}"
    )
    lines.append(
        f"degraded vs global makespan: {dt['degraded_vs_global_x']}x "
        f"(bar {dt['bar_x']}x)"
    )
    wd = report["watchdog_overhead"]
    lines.append(
        f"watchdog overhead: {wd['armed_ticks']} vs {wd['bare_ticks']} ticks "
        f"({'parity' if wd['tick_parity'] else 'DRIFT'}), "
        f"{wd['armed_s']:.3f}s vs {wd['bare_s']:.3f}s wall"
    )
    chaos = report["chaos"]
    lines.append(
        f"chaos matrix: {len(chaos['cells'])} cells, "
        f"{'all OK' if chaos['ok'] else 'FAILURES'}"
    )
    for cell in chaos["cells"]:
        canary = (cell["canary"] or "-").split("]")[-1].split(":")[0].strip()
        lines.append(
            f"  {cell['program']:11s} {cell['fault']:16s} "
            f"{cell['policy']:6s} recovered "
            f"{cell['recovered_runs']}/{cell['runs']} canary={canary}"
        )
    return "\n".join(lines)


def check(report) -> None:
    for kind, row in report["recovery_latency"].items():
        assert row["recovered_runs"] == row["runs"], (
            f"{kind}: not every chaos run recovered"
        )
        assert row["aborts"] > 0, f"{kind}: no abort was ever triggered"
        assert row["fault_firings"] > 0, f"{kind}: fault never fired"
        assert row["latency_mean_ticks"] is not None, (
            f"{kind}: no recovery latency was recorded"
        )
    dt = report["degraded_throughput"]
    assert dt["degraded_aborts"] == 0, "degraded clean run aborted"
    assert dt["degraded_vs_global_x"] <= DEGRADED_VS_GLOBAL_BAR
    assert dt["degraded_vs_global_x"] >= 1.0 / DEGRADED_VS_GLOBAL_BAR
    wd = report["watchdog_overhead"]
    assert wd["tick_parity"], "watchdog perturbed a healthy schedule"
    assert wd["armed_aborts"] == 0
    assert report["chaos"]["ok"], "chaos matrix has failing cells"


def write_json(report) -> str:
    path = os.path.abspath(JSON_PATH)
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def test_resilience(benchmark):
    benchmark.group = "runtime-resilience"
    report = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info["degraded_vs_global_x"] = (
        report["degraded_throughput"]["degraded_vs_global_x"])
    write_json(report)
    emit_report(
        "resilience",
        "Runtime resilience: recovery latency, degraded throughput, chaos",
        render(report),
    )
    check(report)


def main(argv=None) -> int:
    quick = "--quick" in (argv if argv is not None else sys.argv[1:])
    report = measure(quick=quick)
    print(render(report))
    check(report)
    path = write_json(report)
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
