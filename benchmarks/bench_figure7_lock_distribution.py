"""Figure 7 — combined lock counts by category as k grows.

The paper counts, over every atomic section of every program, how many
fine-grain read-only / fine-grain read-write / coarse read-only / coarse
read-write locks the analysis selects for each k in 0..9. The reproduced
shape: k=0 is all-coarse; around k=1 coarse locks convert into (more
numerous) fine locks; beyond a few more k the counts plateau, with a dip
where allocation-site tracing removes locks on section-fresh objects.
"""

from conftest import emit_report
from repro.bench import ALL_BENCHMARKS
from repro.bench.reporting import figure7, figure7_counts


def test_figure7_lock_distribution(benchmark):
    benchmark.group = "figure7"
    sources = {name: spec.source for name, spec in ALL_BENCHMARKS.items()}

    def compute():
        return figure7_counts(sources, ks=tuple(range(10)))

    counts = benchmark.pedantic(compute, rounds=1, iterations=1)
    # paper shapes:
    assert counts[0].fine_ro == 0 and counts[0].fine_rw == 0  # k=0 all coarse
    assert counts[9].fine_ro + counts[9].fine_rw > 0  # fine locks at k=9
    assert counts[6].total == counts[9].total  # plateau beyond k≈6
    for k, c in counts.items():
        benchmark.extra_info[f"k{k}"] = (
            c.fine_ro, c.fine_rw, c.coarse_ro, c.coarse_rw
        )
    emit_report(
        "figure7",
        "Figure 7: combined lock counts per category across k",
        figure7(counts),
    )
