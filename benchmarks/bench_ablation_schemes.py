"""Ablation benchmarks (beyond the paper's tables).

The paper's framework is parameterized; these ablations quantify the design
choices DESIGN.md calls out:

* **k sweep** — runtime effect of the expression-lock bound on the
  benchmark where it matters most (hashtable-2-high);
* **effects on/off** — the value of the Σ_ε read/write component on a
  read-heavy workload (rbtree-low): without it every lock is exclusive and
  concurrent readers serialize;
* **analysis cost vs k** — dataflow time growth across k on the biggest
  micro program (TH).
"""

import os

from conftest import RESULTS_DIR, emit_report
from repro.bench import ALL_BENCHMARKS, ExecutorOptions, ablation_k_cells, run_cells
from repro.bench.harness import run_seq
from repro.inference import LockInference, shared_analysis, transform_with_inference
from repro.interp import ThreadExec, World
from repro.sim import Scheduler

K_SWEEP = (0, 1, 3, 6, 9)


def _run_with_inference(spec, inference, setting, threads=8, n_ops=60):
    program = transform_with_inference(inference)
    world = World(program, pointsto=inference.pointsto, check=True)
    run_seq(world, spec.setup)
    scheduler = Scheduler(ncores=8)
    for tid, ops in enumerate(spec.schedule(setting, threads, n_ops)):
        scheduler.spawn(ThreadExec(world, tid, mode="locks").run_ops(ops))
    return scheduler.run().ticks


def test_ablation_k_sweep_hashtable2(benchmark):
    """The k-limit runtime sweep as one executor grid: the cell's ``k``
    field overrides the configuration's default, so the sweep rides the
    same cache/retry/event machinery as the paper tables."""
    benchmark.group = "ablation-k"
    spec = ALL_BENCHMARKS["hashtable-2"]
    jobs = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
    cells = ablation_k_cells(K_SWEEP, bench="hashtable-2", setting="high")

    def run():
        return run_cells(cells, ExecutorOptions(
            jobs=jobs,
            events_path=os.path.join(RESULTS_DIR, "ablation_k_events.jsonl"),
        ))

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = []
    for cell, outcome in zip(cells, outcomes):
        assert outcome.ok, f"k={cell.k} failed: {outcome.error}"
        counts = LockInference(spec.shared(), k=cell.k).run().lock_counts()
        benchmark.extra_info[f"k{cell.k}"] = outcome.ticks
        lines.append((cell.k, outcome.ticks,
                      counts.fine_ro + counts.fine_rw,
                      counts.coarse_ro + counts.coarse_rw))
    text = "\n".join(
        f"k={k}: ticks={t}  fine locks={f}  coarse locks={c}"
        for k, t, f, c in sorted(lines)
    )
    emit_report("ablation_k", "Ablation: k sweep on hashtable-2-high", text)


def test_ablation_effects_rbtree_low(benchmark):
    benchmark.group = "ablation-effects"
    spec = ALL_BENCHMARKS["rbtree"]
    with_eff = LockInference(spec.shared(), k=9, use_effects=True).run()
    without_eff = LockInference(spec.shared(), k=9, use_effects=False).run()

    def run_both():
        return (
            _run_with_inference(spec, with_eff, "low"),
            _run_with_inference(spec, without_eff, "low"),
        )

    ticks_eff, ticks_noeff = benchmark.pedantic(run_both, rounds=1, iterations=1)
    benchmark.extra_info["with_effects"] = ticks_eff
    benchmark.extra_info["without_effects"] = ticks_noeff
    # read/write modes are where rbtree-low's 2x comes from
    assert ticks_eff < ticks_noeff
    emit_report(
        "ablation_effects",
        "Ablation: read/write effects on rbtree-low (8 threads)",
        f"with effects (S/X modes): {ticks_eff} ticks\n"
        f"without effects (all X):  {ticks_noeff} ticks",
    )


def test_ablation_analysis_cost_vs_k(benchmark):
    benchmark.group = "ablation-analysis-cost"
    spec = ALL_BENCHMARKS["TH"]

    def sweep():
        return {
            k: LockInference(spec.shared(), k=k).run().dataflow_time
            for k in (0, 3, 6, 9)
        }

    times = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for k, t in times.items():
        benchmark.extra_info[f"k{k}"] = t
    assert times[0] <= times[9] * 1.5 + 0.5  # k=0 does no expression tracing
    emit_report(
        "ablation_analysis_cost",
        "Ablation: dataflow analysis time vs k (TH)",
        "\n".join(f"k={k}: {t:.4f}s" for k, t in sorted(times.items())),
    )


def test_ablation_alias_analysis(benchmark):
    """Steensgaard vs Andersen mayAlias: the inclusion analysis removes
    spurious may-alias alternatives during store transfers, which can only
    shrink (or keep) the inferred lock sets."""
    benchmark.group = "ablation-alias"
    sources = {name: spec.source for name, spec in ALL_BENCHMARKS.items()}

    def run_both():
        out = {}
        for alias in ("steensgaard", "andersen"):
            total = 0
            for source in sources.values():
                result = LockInference(shared_analysis(source), k=9,
                                       alias=alias).run()
                total += result.lock_counts().total
            out[alias] = total
        return out

    totals = benchmark.pedantic(run_both, rounds=1, iterations=1)
    benchmark.extra_info.update(totals)
    assert totals["andersen"] <= totals["steensgaard"]
    emit_report(
        "ablation_alias",
        "Ablation: total inferred locks by alias analysis (all programs, k=9)",
        "\n".join(f"{alias}: {n} locks" for alias, n in totals.items()),
    )
