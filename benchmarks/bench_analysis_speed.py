"""Analysis-speed benchmark: the Table 1 k=9 column as a perf trajectory.

Times the whole-program lock inference at k=9 over the Table 1 corpus (the
synthetic SPEC rows at ``SPEC_SCALE`` plus the STAMP programs) and writes
``BENCH_analysis.json`` at the repo root: per-program wall times, aggregate
solver counters from the :class:`~repro.inference.AnalysisProfile`, and the
speedup against the recorded seed-engine baseline. Future PRs re-run this
after touching the analysis path and commit the refreshed JSON, so the
file's git history is the perf trajectory.

Run standalone (``python benchmarks/bench_analysis_speed.py [--quick]``,
``--quick`` = STAMP-only CI smoke) or under pytest
(``pytest benchmarks/bench_analysis_speed.py``).
"""

import json
import os
import sys
import time

sys.path.insert(0, os.path.dirname(__file__))

from conftest import emit_report  # noqa: E402
from repro.bench.configs import STAMP_BENCHMARKS  # noqa: E402
from repro.bench.programs.spec import spec_sources  # noqa: E402
from repro.inference import LockInference  # noqa: E402

SPEC_SCALE = 0.05  # matches bench_table1_analysis_time.py

# Seed-engine wall clock for the full corpus at k=9 (sum of per-program
# analysis times, same machine class), measured at the commit introducing
# the performance layer. The acceptance bar for that layer was >= 2x.
SEED_TOTAL_S = 10.74

JSON_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_analysis.json")


def corpus(quick: bool = False):
    sources = {} if quick else dict(spec_sources(scale=SPEC_SCALE))
    for name, spec in STAMP_BENCHMARKS.items():
        sources[name] = spec.source
    return sources


def measure(quick: bool = False):
    rows = {}
    total = 0.0
    aggregate = {"dataflow_steps": 0, "summary_runs": 0,
                 "transfer_cache_hits": 0, "transfer_cache_misses": 0}
    for name, source in sorted(corpus(quick).items()):
        started = time.perf_counter()
        result = LockInference(source, k=9).run()
        elapsed = time.perf_counter() - started
        total += elapsed
        profile = result.profile
        rows[name] = {
            "wall_s": round(elapsed, 4),
            "pointer_s": round(profile.pointer_time, 4),
            "dataflow_s": round(profile.dataflow_time, 4),
            "sections": profile.sections,
            "dataflow_steps": profile.dataflow_steps,
            "transfer_cache_hit_rate": round(
                profile.transfer_cache_hit_rate, 3),
        }
        for key in aggregate:
            aggregate[key] += getattr(profile, key)
    return {
        "benchmark": "table1-k9-column",
        "quick": quick,
        "k": 9,
        "spec_scale": SPEC_SCALE,
        "programs": rows,
        "total_wall_s": round(total, 3),
        "seed_total_wall_s": SEED_TOTAL_S if not quick else None,
        "speedup_vs_seed": round(SEED_TOTAL_S / total, 2) if not quick else None,
        "aggregate": aggregate,
    }


def render(report) -> str:
    lines = [f"{'Program':12s} {'wall (s)':>9s} {'sections':>9s} "
             f"{'steps':>9s} {'cache hit':>10s}"]
    for name, row in sorted(report["programs"].items()):
        lines.append(
            f"{name:12s} {row['wall_s']:9.3f} {row['sections']:9d} "
            f"{row['dataflow_steps']:9d} {row['transfer_cache_hit_rate']:10.1%}"
        )
    lines.append(f"{'TOTAL':12s} {report['total_wall_s']:9.3f}")
    if report["speedup_vs_seed"] is not None:
        lines.append(
            f"seed engine baseline {report['seed_total_wall_s']:.2f}s "
            f"-> {report['speedup_vs_seed']:.2f}x speedup"
        )
    return "\n".join(lines)


def write_json(report) -> str:
    path = os.path.abspath(JSON_PATH)
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def test_analysis_speed(benchmark):
    benchmark.group = "analysis-speed"

    report = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info["total_wall_s"] = report["total_wall_s"]
    benchmark.extra_info["speedup_vs_seed"] = report["speedup_vs_seed"]
    write_json(report)
    emit_report(
        "analysis_speed",
        f"Analysis speed: Table 1 k=9 column (SPEC at {SPEC_SCALE}x + STAMP)",
        render(report),
    )
    assert report["programs"]
    # the optimized engine must hold the PR's acceptance bar with margin
    assert report["total_wall_s"] < SEED_TOTAL_S


def main(argv=None) -> int:
    quick = "--quick" in (argv if argv is not None else sys.argv[1:])
    report = measure(quick=quick)
    print(render(report))
    if not quick:
        path = write_json(report)
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
