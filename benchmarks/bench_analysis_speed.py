"""Analysis-speed benchmark: the Table 1 k=9 column as a perf trajectory.

Times the whole-program lock inference at k=9 over the Table 1 corpus (the
synthetic SPEC rows at ``SPEC_SCALE`` plus the STAMP programs) in three
modes and writes ``BENCH_analysis.json`` at the repo root:

* **cold** — serial, no disk cache: the engine's baseline path and the
  number the regression gate tracks (``total_wall_s``);
* **parallel** — cold with ``LockInference(jobs=PARALLEL_JOBS)`` into a
  fresh disk cache: summaries are solved bottom-up over the call-graph
  condensation, heavy SCC levels fanning out across worker processes.
  The worker count is clamped to the CPUs actually available
  (``jobs_effective`` in the JSON) — on a single-core runner the
  scheduler degrades to the serial bottom-up order, which still beats
  the lazy path by never re-running a summary;
* **warm** — serial rerun against the cache the parallel pass filled: the
  front half loads pickled, sections come straight from the section
  store, the dataflow never runs.

The JSON carries per-program walls for all three modes plus aggregate
solver counters (hit rates computed from summed hits/lookups, never a
mean of per-program rates), the ``bitset_cold_wall_s``/``bitset_warm_wall_s``
column pair naming the bitset kernel path's cold/warm totals, and a
``kernel`` microbenchmark section (join + gen/kill transfer throughput on
synthetic fact bitsets, informational). Future PRs re-run this after
touching the analysis path and commit the refreshed JSON, so the file's
git history is the perf trajectory; ``--check-baseline`` compares a fresh
``bitset_cold`` run against the committed JSON and fails on a >25%
regression (the CI analysis-speed job runs it).

Run standalone (``python benchmarks/bench_analysis_speed.py [--quick]
[--jobs N] [--check-baseline]``, ``--quick`` = STAMP-only CI smoke) or
under pytest (``pytest benchmarks/bench_analysis_speed.py``).
"""

import json
import os
import shutil
import sys
import tempfile
import time

sys.path.insert(0, os.path.dirname(__file__))

from conftest import emit_report  # noqa: E402
from repro.bench.configs import STAMP_BENCHMARKS  # noqa: E402
from repro.bench.programs.spec import spec_sources  # noqa: E402
from repro.inference import LockInference  # noqa: E402
from repro.inference.schedule import effective_jobs  # noqa: E402

SPEC_SCALE = 0.05  # matches bench_table1_analysis_time.py
PARALLEL_JOBS = 4

# Seed-engine wall clock for the full corpus at k=9 (sum of per-program
# analysis times, same machine class), measured at the commit introducing
# the performance layer. The acceptance bar for that layer was >= 2x.
SEED_TOTAL_S = 10.74

# --check-baseline tolerance: fail if a fresh cold run is slower than the
# committed total by more than this factor.
REGRESSION_FACTOR = 1.25

JSON_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_analysis.json")

AGGREGATE_KEYS = (
    "dataflow_steps", "summary_runs", "transfer_cache_hits",
    "transfer_cache_misses", "transfer_cache_stale", "mask_hits",
    "mask_fallbacks", "summaries_from_disk", "sections_from_disk",
)

# Synthetic fact-universe size for the kernel microbenchmark.
KERNEL_TERMS = 4096


def kernel_microbench(terms: int = KERNEL_TERMS, target_s: float = 0.05):
    """Join + transfer throughput of the bitset kernel on synthetic facts.

    Builds two overlapping fact sets over a *terms*-wide universe through
    the real :class:`FactInterner` encoding, then times the two integer
    ops the dataflow core reduces to: the join (``a | b``) and the
    warmed-up gen/kill transfer (``(bits & mask) | gen``).  Reported as
    operations/second; informational (machine-dependent), not gated.
    """
    from repro.inference.facts import FactInterner
    from repro.locks.effects import RO, RW
    from repro.locks.terms import TVar

    interner = FactInterner()
    universe = [TVar(f"synth{i}") for i in range(terms)]
    bits_a = interner.encode(
        (t, RW if i % 3 == 0 else RO)
        for i, t in enumerate(universe) if i % 2 == 0)
    bits_b = interner.encode(
        (t, RW if i % 5 == 0 else RO)
        for i, t in enumerate(universe) if i % 2 == 1 or i % 7 == 0)
    kill_mask = ~interner.encode(
        (t, RW) for i, t in enumerate(universe) if i % 4 == 0)
    gen = interner.encode(
        (t, RW if i % 2 == 0 else RO)
        for i, t in enumerate(universe) if i % 11 == 0)

    def _throughput(op):
        reps = 256
        while True:
            started = time.perf_counter()
            for _ in range(reps):
                op()
            elapsed = time.perf_counter() - started
            if elapsed >= target_s:
                return reps / elapsed
            reps *= 4

    join_ops = _throughput(lambda: bits_a | bits_b)
    transfer_ops = _throughput(lambda: (bits_a & kill_mask) | gen)
    return {
        "fact_terms": terms,
        "join_ops_per_s": int(join_ops),
        "transfer_ops_per_s": int(transfer_ops),
    }


def corpus(quick: bool = False):
    sources = {} if quick else dict(spec_sources(scale=SPEC_SCALE))
    for name, spec in STAMP_BENCHMARKS.items():
        sources[name] = spec.source
    return sources


def _sweep(sources, jobs=1, cache_dir=None):
    """One pass over the corpus; returns (per-program rows, total wall)."""
    rows = {}
    total = 0.0
    for name, source in sorted(sources.items()):
        started = time.perf_counter()
        result = LockInference(source, k=9, jobs=jobs,
                               cache_dir=cache_dir).run()
        elapsed = time.perf_counter() - started
        total += elapsed
        rows[name] = (elapsed, result.profile)
    return rows, total


def measure(quick: bool = False, jobs: int = PARALLEL_JOBS):
    sources = corpus(quick)
    cache_root = tempfile.mkdtemp(prefix="bench-analysis-cache-")
    try:
        cold_rows, cold_total = _sweep(sources)
        par_rows, par_total = _sweep(sources, jobs=jobs,
                                     cache_dir=cache_root)
        warm_rows, warm_total = _sweep(sources, cache_dir=cache_root)
    finally:
        shutil.rmtree(cache_root, ignore_errors=True)

    rows = {}
    aggregate = {key: 0 for key in AGGREGATE_KEYS}
    warm_aggregate = {key: 0 for key in AGGREGATE_KEYS}
    for name in sorted(sources):
        cold_s, profile = cold_rows[name]
        par_s, _ = par_rows[name]
        warm_s, warm_profile = warm_rows[name]
        rows[name] = {
            "wall_s": round(cold_s, 4),
            "parallel_s": round(par_s, 4),
            "warm_s": round(warm_s, 4),
            "pointer_s": round(profile.pointer_time, 4),
            "dataflow_s": round(profile.dataflow_time, 4),
            "sections": profile.sections,
            "dataflow_steps": profile.dataflow_steps,
            "transfer_cache_hit_rate": round(
                profile.transfer_cache_hit_rate, 3),
            "mask_hit_rate": round(profile.mask_hit_rate, 3),
            "fact_terms": profile.fact_terms,
            "peak_bitset_popcount": profile.peak_bitset_popcount,
        }
        for key in AGGREGATE_KEYS:
            aggregate[key] += getattr(profile, key)
            warm_aggregate[key] += getattr(warm_profile, key)
    lookups = (aggregate["transfer_cache_hits"]
               + aggregate["transfer_cache_misses"])
    aggregate["transfer_cache_hit_rate"] = round(
        aggregate["transfer_cache_hits"] / lookups, 4) if lookups else 0.0
    return {
        "benchmark": "table1-k9-column",
        "quick": quick,
        "k": 9,
        "spec_scale": SPEC_SCALE,
        "jobs": jobs,
        "jobs_effective": effective_jobs(jobs),
        "programs": rows,
        "total_wall_s": round(cold_total, 3),
        # the cold/warm walls of the bitset kernel path, under the names
        # the regression gate tracks (the engine's default path *is* the
        # bitset kernel; total_wall_s stays as the legacy alias)
        "bitset_cold_wall_s": round(cold_total, 3),
        "bitset_warm_wall_s": round(warm_total, 3),
        "kernel": kernel_microbench(),
        "parallel_wall_s": round(par_total, 3),
        "warm_wall_s": round(warm_total, 3),
        "parallel_speedup": round(cold_total / par_total, 2),
        "warm_speedup": round(cold_total / warm_total, 2),
        "seed_total_wall_s": SEED_TOTAL_S if not quick else None,
        "speedup_vs_seed": (round(SEED_TOTAL_S / cold_total, 2)
                            if not quick else None),
        "aggregate": aggregate,
        "warm_aggregate": warm_aggregate,
    }


def render(report) -> str:
    lines = [f"{'Program':12s} {'cold (s)':>9s} {'par (s)':>9s} "
             f"{'warm (s)':>9s} {'sections':>9s} {'steps':>9s} "
             f"{'cache hit':>10s} {'mask hit':>9s}"]
    for name, row in sorted(report["programs"].items()):
        lines.append(
            f"{name:12s} {row['wall_s']:9.3f} {row['parallel_s']:9.3f} "
            f"{row['warm_s']:9.3f} {row['sections']:9d} "
            f"{row['dataflow_steps']:9d} "
            f"{row['transfer_cache_hit_rate']:10.1%} "
            f"{row['mask_hit_rate']:9.1%}"
        )
    lines.append(
        f"{'TOTAL':12s} {report['total_wall_s']:9.3f} "
        f"{report['parallel_wall_s']:9.3f} {report['warm_wall_s']:9.3f}"
    )
    kernel = report["kernel"]
    lines.append(
        f"kernel microbench ({kernel['fact_terms']} synthetic terms): "
        f"join {kernel['join_ops_per_s'] / 1e6:.2f} Mop/s, "
        f"transfer {kernel['transfer_ops_per_s'] / 1e6:.2f} Mop/s"
    )
    lines.append(
        f"parallel (jobs={report['jobs']}, "
        f"effective {report['jobs_effective']}): "
        f"{report['parallel_speedup']:.2f}x vs cold; "
        f"warm disk cache: {report['warm_speedup']:.2f}x vs cold"
    )
    if report["speedup_vs_seed"] is not None:
        lines.append(
            f"seed engine baseline {report['seed_total_wall_s']:.2f}s "
            f"-> {report['speedup_vs_seed']:.2f}x speedup"
        )
    return "\n".join(lines)


def write_json(report) -> str:
    path = os.path.abspath(JSON_PATH)
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def check_baseline(report, path=None) -> bool:
    """Compare a fresh cold total against the committed BENCH_analysis.json.

    Returns True when within ``REGRESSION_FACTOR``; missing/invalid
    baselines pass (first run on a branch that never committed one).
    """
    path = os.path.abspath(path or JSON_PATH)
    try:
        with open(path) as handle:
            committed = json.load(handle)
        # gate on the bitset kernel's cold column; older baselines that
        # predate the kernel only carry total_wall_s (same measurement)
        baseline = float(committed.get("bitset_cold_wall_s",
                                       committed["total_wall_s"]))
    except (OSError, ValueError, KeyError):
        print(f"no committed baseline at {path}; skipping the gate")
        return True
    fresh = report["bitset_cold_wall_s"]
    limit = baseline * REGRESSION_FACTOR
    verdict = "OK" if fresh <= limit else "REGRESSION"
    print(f"baseline gate: bitset_cold {fresh:.3f}s vs committed "
          f"{baseline:.3f}s (limit {limit:.3f}s) -> {verdict}")
    return fresh <= limit


def test_analysis_speed(benchmark):
    benchmark.group = "analysis-speed"

    report = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info["total_wall_s"] = report["total_wall_s"]
    benchmark.extra_info["bitset_cold_wall_s"] = report["bitset_cold_wall_s"]
    benchmark.extra_info["bitset_warm_wall_s"] = report["bitset_warm_wall_s"]
    benchmark.extra_info["parallel_wall_s"] = report["parallel_wall_s"]
    benchmark.extra_info["warm_wall_s"] = report["warm_wall_s"]
    benchmark.extra_info["speedup_vs_seed"] = report["speedup_vs_seed"]
    write_json(report)
    emit_report(
        "analysis_speed",
        f"Analysis speed: Table 1 k=9 column (SPEC at {SPEC_SCALE}x + STAMP)",
        render(report),
    )
    assert report["programs"]
    # the optimized engine must hold the PR's acceptance bar with margin
    assert report["total_wall_s"] < SEED_TOTAL_S
    # a warm rerun of an unchanged corpus must skip the dataflow outright
    assert report["warm_aggregate"]["dataflow_steps"] == 0
    assert report["warm_wall_s"] < report["total_wall_s"]
    # the bitset kernel must actually run cold (and the microbench with it)
    assert report["aggregate"]["mask_hits"] > 0
    assert report["kernel"]["join_ops_per_s"] > 0
    assert report["kernel"]["transfer_ops_per_s"] > 0


def main(argv=None) -> int:
    argv = list(argv if argv is not None else sys.argv[1:])
    quick = "--quick" in argv
    gate = "--check-baseline" in argv
    jobs = PARALLEL_JOBS
    if "--jobs" in argv:
        jobs = int(argv[argv.index("--jobs") + 1])
    report = measure(quick=quick, jobs=jobs)
    print(render(report))
    ok = True
    if gate:
        ok = check_baseline(report)
    if not quick and not gate:
        path = write_json(report)
        print(f"wrote {path}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
