"""Figure 8 — scalability with 1, 2, 4, and 8 threads.

The paper plots execution time for rbtree, hashtable-2, TH, genome, and
kmeans as the thread count grows. Reproduced shapes: the lock
configurations and TL2 scale on the low-contention micros; coarse locks
flatten where sections serialize (rbtree-high); TH-high is where
multi-grain locks keep scaling while TL2 degrades past 4 threads.

Like Table 2, the grid runs through the parallel fault-tolerant executor;
the JSONL event stream lands at ``results/figure8_events.jsonl`` and the
result cache makes ``--resume`` re-runs incremental.

Run standalone (``python benchmarks/bench_figure8_scalability.py
[--jobs N] [--resume]``) or under pytest.
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.dirname(__file__))

from conftest import RESULTS_DIR, emit_report  # noqa: E402
from repro.bench import ExecutorOptions  # noqa: E402
from repro.bench.reporting import FIGURE8_BENCHES, figure8, figure8_series  # noqa: E402

N_OPS = 60
THREADS = (1, 2, 4, 8)
EVENTS_PATH = os.path.join(RESULTS_DIR, "figure8_events.jsonl")


def options(jobs=1, resume=False, events_path=EVENTS_PATH):
    os.makedirs(RESULTS_DIR, exist_ok=True)
    if not resume and events_path and os.path.exists(events_path):
        os.remove(events_path)
    return ExecutorOptions(jobs=jobs, resume=resume, events_path=events_path)


def regenerate(jobs=1, resume=False, n_ops=N_OPS):
    series = figure8_series(
        benches=FIGURE8_BENCHES, thread_counts=THREADS, n_ops=n_ops,
        executor=options(jobs=jobs, resume=resume),
    )
    emit_report(
        "figure8",
        f"Figure 8: scalability (ticks) across {THREADS} threads, "
        f"{n_ops} ops/thread",
        figure8(series),
    )
    return series


def test_figure8(benchmark):
    benchmark.group = "figure8"
    jobs = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
    series = benchmark.pedantic(regenerate, kwargs={"jobs": jobs},
                                rounds=1, iterations=1)
    for label, per_config in series.items():
        for config, per_thread in per_config.items():
            assert None not in per_thread.values(), (
                f"cell {label}/{config} failed")
        benchmark.extra_info[label] = per_config


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=None)
    parser.add_argument("--resume", action="store_true")
    parser.add_argument("--ops", type=int, default=N_OPS)
    args = parser.parse_args(argv)
    series = regenerate(jobs=args.jobs, resume=args.resume, n_ops=args.ops)
    print(figure8(series))
    print(f"\nevent log: {EVENTS_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
