"""Figure 8 — scalability with 1, 2, 4, and 8 threads.

The paper plots execution time for rbtree, hashtable-2, TH, genome, and
kmeans as the thread count grows. Reproduced shapes: the lock
configurations and TL2 scale on the low-contention micros; coarse locks
flatten where sections serialize (rbtree-high); TH-high is where
multi-grain locks keep scaling while TL2 degrades past 4 threads.
"""

import pytest

from conftest import emit_report
from repro.bench import ALL_BENCHMARKS, CONFIGS, run_benchmark
from repro.bench.reporting import figure8

N_OPS = 60
THREADS = (1, 2, 4, 8)
BENCHES = (
    ("rbtree", "low"),
    ("rbtree", "high"),
    ("hashtable-2", "low"),
    ("hashtable-2", "high"),
    ("TH", "low"),
    ("TH", "high"),
    ("genome", None),
    ("kmeans", None),
)

_series = {}


@pytest.mark.parametrize(
    "name,setting", BENCHES,
    ids=[f"{n}-{s}" if s else n for n, s in BENCHES],
)
def test_figure8_series(benchmark, name, setting):
    benchmark.group = "figure8"
    spec = ALL_BENCHMARKS[name]

    def run_series():
        return {
            config: {
                threads: run_benchmark(
                    spec, config, threads=threads, setting=setting,
                    n_ops=N_OPS,
                ).ticks
                for threads in THREADS
            }
            for config in CONFIGS
        }

    data = benchmark.pedantic(run_series, rounds=1, iterations=1)
    label = f"{name}-{setting}" if setting else name
    for config, per_thread in data.items():
        benchmark.extra_info[config] = per_thread
    _series[label] = data
    if len(_series) == len(BENCHES):
        emit_report(
            "figure8",
            f"Figure 8: scalability (ticks) across {THREADS} threads, "
            f"{N_OPS} ops/thread",
            figure8(_series),
        )
