"""Table 2 — execution times with 8 threads.

For every concurrent benchmark (STAMP stand-ins; micro-benchmarks under the
low and high settings) we run the four configurations of the paper —
Global, Coarse (k=0), Fine+Coarse (k=9), and the TL2 STM — on the simulated
8-core machine and report makespans in ticks.

Reproduced shapes (paper Table 2): STM catastrophic on vacation, worst on
genome/kmeans/bayes/hashtable-high, best on labyrinth and the low-contention
micros; read-only coarse locks ≈ 2x global on the `low` micros; fine locks
≈ 2x coarse on hashtable-2-high; coarse ≈ global on the STAMP programs.
"""

import pytest

from conftest import emit_report
from repro.bench import ALL_BENCHMARKS, CONFIGS, run_benchmark
from repro.bench.reporting import table2

N_OPS = 120
_rows = []
_cells = [
    (spec, setting)
    for spec in ALL_BENCHMARKS.values()
    for setting in spec.settings
]


@pytest.mark.parametrize(
    "spec,setting",
    _cells,
    ids=[f"{s.name}-{st}" if st else s.name for s, st in _cells],
)
def test_table2_row(benchmark, spec, setting):
    benchmark.group = "table2"

    def run_row():
        return {
            config: run_benchmark(
                spec, config, threads=8, setting=setting, n_ops=N_OPS
            )
            for config in CONFIGS
        }

    results = benchmark.pedantic(run_row, rounds=1, iterations=1)
    label = f"{spec.name}-{setting}" if setting else spec.name
    for config, result in results.items():
        benchmark.extra_info[config] = result.ticks
    benchmark.extra_info["stm_aborts"] = results["stm"].stm_aborts
    _rows.append((label, results))
    if len(_rows) == len(_cells):
        emit_report(
            "table2",
            f"Table 2: execution times (simulated ticks), 8 threads, "
            f"{N_OPS} ops/thread",
            table2(_rows),
        )
