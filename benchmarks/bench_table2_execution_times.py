"""Table 2 — execution times with 8 threads.

For every concurrent benchmark (STAMP stand-ins; micro-benchmarks under the
low and high settings) we run the four configurations of the paper —
Global, Coarse (k=0), Fine+Coarse (k=9), and the TL2 STM — on the simulated
8-core machine and report makespans in ticks.

The grid runs through the parallel fault-tolerant executor
(:mod:`repro.bench.executor`): cells fan out across ``--jobs`` worker
processes, finished cells land in ``results/cache/`` (``--resume`` skips
them on a re-run), and the JSONL event stream is persisted next to the
rendered report at ``results/table2_events.jsonl``.

Reproduced shapes (paper Table 2): STM catastrophic on vacation, worst on
genome/kmeans/bayes/hashtable-high, best on labyrinth and the low-contention
micros; read-only coarse locks ≈ 2x global on the `low` micros; fine locks
≈ 2x coarse on hashtable-2-high; coarse ≈ global on the STAMP programs.

Run standalone (``python benchmarks/bench_table2_execution_times.py
[--jobs N] [--resume] [--ops N]``) or under pytest.
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.dirname(__file__))

from conftest import RESULTS_DIR, emit_report  # noqa: E402
from repro.bench import ExecutorOptions  # noqa: E402
from repro.bench.reporting import table2, table2_rows  # noqa: E402

N_OPS = 120
EVENTS_PATH = os.path.join(RESULTS_DIR, "table2_events.jsonl")


def options(jobs=1, resume=False, events_path=EVENTS_PATH):
    os.makedirs(RESULTS_DIR, exist_ok=True)
    if not resume and events_path and os.path.exists(events_path):
        os.remove(events_path)  # fresh sweep, fresh event log
    return ExecutorOptions(jobs=jobs, resume=resume, events_path=events_path)


def regenerate(jobs=1, resume=False, threads=8, n_ops=N_OPS):
    rows = table2_rows(threads=threads, n_ops=n_ops,
                       executor=options(jobs=jobs, resume=resume))
    emit_report(
        "table2",
        f"Table 2: execution times (simulated ticks), {threads} threads, "
        f"{n_ops} ops/thread",
        table2(rows),
    )
    return rows


def test_table2(benchmark):
    benchmark.group = "table2"
    jobs = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
    rows = benchmark.pedantic(regenerate, kwargs={"jobs": jobs},
                              rounds=1, iterations=1)
    for label, results in rows:
        for config, result in results.items():
            assert hasattr(result, "ticks"), (
                f"cell {label}/{config} failed: {result!r}")
        benchmark.extra_info[label] = {
            config: result.ticks for config, result in results.items()
        }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=None)
    parser.add_argument("--resume", action="store_true")
    parser.add_argument("--threads", type=int, default=8)
    parser.add_argument("--ops", type=int, default=N_OPS)
    args = parser.parse_args(argv)
    rows = regenerate(jobs=args.jobs, resume=args.resume,
                      threads=args.threads, n_ops=args.ops)
    print(table2(rows))
    print(f"\nevent log: {EVENTS_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
