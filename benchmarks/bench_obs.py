"""Observability overhead benchmark: the cost of the ``repro.obs`` layer.

The obs PR's acceptance bar is that telemetry is free when off and cheap
when on. This harness measures both and writes ``BENCH_obs.json`` at the
repo root:

* **disabled** — the STAMP corpus analysed at k=9 with the process-global
  tracer off: the everyday path, and the number the regression gate
  tracks (``disabled_wall_s``);
* **enabled** — the same sweep with tracing on, draining the span buffer
  after each program: must stay within ``ENABLED_FACTOR`` (2x) of the
  disabled wall;
* **micro** — a tight loop over a disabled ``span()``: per-op cost in
  nanoseconds, pinning the no-op fast path;
* **tick identity** — two pinned simulator cells run with tracing off and
  on must both reproduce the pre-obs golden tick counts exactly: the
  tracer may observe the schedule, never perturb it.

The 5% bar ("tracing-disabled within 5% of the pre-obs wall") cannot be
re-measured against code this PR replaced, so it is held as a derived
estimate: the spans an enabled run records, costed at the measured
disabled per-op price, as a fraction of the disabled wall
(``disabled_overhead_pct``). ``--check-baseline`` additionally compares a
fresh disabled run against the committed JSON and fails on a >25%
regression, so the file's git history is the overhead trajectory.

Run standalone (``python benchmarks/bench_obs.py [--quick]
[--check-baseline]``) or under pytest (``pytest benchmarks/bench_obs.py``).
"""

import json
import os
import sys
import time

sys.path.insert(0, os.path.dirname(__file__))

from conftest import emit_report  # noqa: E402
from repro.bench import ALL_BENCHMARKS, run_benchmark  # noqa: E402
from repro.bench.configs import STAMP_BENCHMARKS  # noqa: E402
from repro.inference import LockInference  # noqa: E402
from repro.obs.trace import Tracer, get_tracer  # noqa: E402

# Pre-obs golden tick counts, captured at the seed commit for two pinned
# cells: (ticks, work, blocked_ticks, lock_acquires). Must match
# tests/test_obs_trace.py.
GOLDEN_FINE = (367, 1323, 70, 48)
GOLDEN_GLOBAL = (415, 469, 343, 24)

# Enabled tracing may cost at most this factor over disabled.
ENABLED_FACTOR = 2.0

# Estimated disabled-mode overhead (span sites costed at the measured
# no-op price) may claim at most this share of the disabled wall.
DISABLED_OVERHEAD_PCT = 5.0

# --check-baseline tolerance: fail if a fresh disabled run is slower than
# the committed total by more than this factor (machine variance margin,
# same policy as bench_analysis_speed).
REGRESSION_FACTOR = 1.25

JSON_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_obs.json")

QUICK_PROGRAMS = ("genome", "kmeans", "vacation")


def corpus(quick: bool = False):
    names = QUICK_PROGRAMS if quick else sorted(STAMP_BENCHMARKS)
    return {name: STAMP_BENCHMARKS[name].source for name in names}


def _sweep(sources, enabled: bool):
    """Analyse the corpus once; returns (per-program walls, total, spans)."""
    tracer = get_tracer()
    tracer.configure(enabled)
    tracer.drain()
    rows = {}
    total = 0.0
    spans = 0
    try:
        for name, source in sorted(sources.items()):
            started = time.perf_counter()
            LockInference(source, k=9).run()
            elapsed = time.perf_counter() - started
            total += elapsed
            rows[name] = elapsed
            spans += len(tracer.drain())
    finally:
        tracer.configure(False)
        tracer.drain()
    return rows, total, spans


def _micro_disabled_ns(iterations: int = 200_000) -> float:
    tracer = Tracer()  # private instance: never enabled
    started = time.perf_counter()
    for _ in range(iterations):
        with tracer.span("hot", "bench", a=1):
            pass
    return (time.perf_counter() - started) / iterations * 1e9


def _golden_cells():
    fine = run_benchmark(ALL_BENCHMARKS["hashtable-2"], "fine+coarse",
                         threads=4, setting="high", n_ops=12)
    glob = run_benchmark(ALL_BENCHMARKS["hashtable-2"], "global",
                         threads=2, setting="high", n_ops=12)
    return (
        (fine.ticks, fine.work, fine.blocked_ticks, fine.lock_acquires),
        (glob.ticks, glob.work, glob.blocked_ticks, glob.lock_acquires),
    )


def _tick_identity():
    tracer = get_tracer()
    tracer.configure(False)
    tracer.drain()
    disabled = _golden_cells()
    tracer.configure(True)
    try:
        enabled = _golden_cells()
    finally:
        tracer.configure(False)
        tracer.drain()
    golden = (GOLDEN_FINE, GOLDEN_GLOBAL)
    return {
        "golden": [list(row) for row in golden],
        "disabled_matches": disabled == golden,
        "enabled_matches": enabled == golden,
    }


def measure(quick: bool = False):
    sources = corpus(quick)
    disabled_rows, disabled_total, _ = _sweep(sources, enabled=False)
    enabled_rows, enabled_total, spans = _sweep(sources, enabled=True)
    micro_ns = _micro_disabled_ns(50_000 if quick else 200_000)
    identity = _tick_identity()

    # spans recorded by the enabled sweep, each costed at the no-op price:
    # the ceiling the disabled path can possibly add over a span-free build.
    estimated_cost_s = spans * micro_ns * 1e-9
    overhead_pct = (100.0 * estimated_cost_s / disabled_total
                    if disabled_total else 0.0)
    rows = {
        name: {
            "disabled_s": round(disabled_rows[name], 4),
            "enabled_s": round(enabled_rows[name], 4),
        }
        for name in sorted(sources)
    }
    return {
        "benchmark": "obs-overhead",
        "quick": quick,
        "k": 9,
        "programs": rows,
        "disabled_wall_s": round(disabled_total, 3),
        "enabled_wall_s": round(enabled_total, 3),
        "enabled_factor": round(enabled_total / disabled_total, 3)
        if disabled_total else 0.0,
        "enabled_spans": spans,
        "disabled_span_ns": round(micro_ns, 1),
        "disabled_overhead_pct": round(overhead_pct, 3),
        "tick_identity": identity,
    }


def render(report) -> str:
    lines = [f"{'Program':12s} {'off (s)':>9s} {'on (s)':>9s}"]
    for name, row in sorted(report["programs"].items()):
        lines.append(f"{name:12s} {row['disabled_s']:9.3f} "
                     f"{row['enabled_s']:9.3f}")
    lines.append(
        f"{'TOTAL':12s} {report['disabled_wall_s']:9.3f} "
        f"{report['enabled_wall_s']:9.3f}  "
        f"({report['enabled_factor']:.2f}x, limit {ENABLED_FACTOR:.1f}x)"
    )
    lines.append(
        f"disabled span: {report['disabled_span_ns']:.0f}ns/op; "
        f"{report['enabled_spans']} spans -> estimated disabled overhead "
        f"{report['disabled_overhead_pct']:.2f}% "
        f"(limit {DISABLED_OVERHEAD_PCT:.0f}%)"
    )
    identity = report["tick_identity"]
    lines.append(
        "tick identity vs pre-obs goldens: "
        f"disabled={'OK' if identity['disabled_matches'] else 'FAIL'} "
        f"enabled={'OK' if identity['enabled_matches'] else 'FAIL'}"
    )
    return "\n".join(lines)


def write_json(report) -> str:
    path = os.path.abspath(JSON_PATH)
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def check_baseline(report, path=None) -> bool:
    """Compare a fresh disabled wall against the committed BENCH_obs.json.

    Returns True when within ``REGRESSION_FACTOR``; missing/invalid
    baselines pass (first run on a branch that never committed one).
    """
    path = os.path.abspath(path or JSON_PATH)
    try:
        with open(path) as handle:
            committed = json.load(handle)
        baseline = float(committed["disabled_wall_s"])
    except (OSError, ValueError, KeyError):
        print(f"no committed baseline at {path}; skipping the gate")
        return True
    fresh = report["disabled_wall_s"]
    limit = baseline * REGRESSION_FACTOR
    verdict = "OK" if fresh <= limit else "REGRESSION"
    print(f"baseline gate: disabled {fresh:.3f}s vs committed "
          f"{baseline:.3f}s (limit {limit:.3f}s) -> {verdict}")
    return fresh <= limit


def _gates(report) -> None:
    identity = report["tick_identity"]
    assert identity["disabled_matches"], \
        "tracing-disabled run diverged from the pre-obs golden ticks"
    assert identity["enabled_matches"], \
        "enabling tracing perturbed the simulated schedule"
    assert report["enabled_factor"] <= ENABLED_FACTOR, (
        f"tracing-enabled sweep is {report['enabled_factor']:.2f}x "
        f"the disabled wall (limit {ENABLED_FACTOR:.1f}x)"
    )
    assert report["disabled_overhead_pct"] < DISABLED_OVERHEAD_PCT, (
        f"estimated disabled overhead {report['disabled_overhead_pct']:.2f}% "
        f"exceeds {DISABLED_OVERHEAD_PCT:.0f}%"
    )


def test_obs_overhead(benchmark):
    benchmark.group = "obs-overhead"

    report = benchmark.pedantic(measure, kwargs={"quick": True},
                                rounds=1, iterations=1)
    benchmark.extra_info["disabled_wall_s"] = report["disabled_wall_s"]
    benchmark.extra_info["enabled_factor"] = report["enabled_factor"]
    benchmark.extra_info["disabled_span_ns"] = report["disabled_span_ns"]
    emit_report(
        "obs_overhead",
        "Observability overhead: tracing off vs on (STAMP subset, k=9)",
        render(report),
    )
    _gates(report)


def main(argv=None) -> int:
    argv = list(argv if argv is not None else sys.argv[1:])
    quick = "--quick" in argv
    gate = "--check-baseline" in argv
    report = measure(quick=quick)
    print(render(report))
    _gates(report)
    ok = True
    if gate:
        ok = check_baseline(report)
    if not quick and not gate:
        path = write_json(report)
        print(f"wrote {path}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
