"""Table 1 — program size and analysis time (k=0 vs k=9).

The paper analyzes SPECint2000 programs (main wrapped in one atomic
section), the STAMP benchmarks, and the micro-benchmarks, reporting the
whole-program analysis time at k=0 (≈ pointer-analysis time, no dataflow)
and k=9. We regenerate the same table over the same three program groups;
the SPEC rows use the synthetic corpus at SPEC_SCALE × the paper's KLoC
(see DESIGN.md substitutions — absolute sizes are scaled, ordering and the
k=0 ≪ k=9 growth pattern are the reproduced shape).
"""

import pytest

from conftest import emit_report
from repro.bench import ALL_BENCHMARKS
from repro.bench.programs.spec import spec_sources
from repro.bench.reporting import table1, table1_row
from repro.inference import LockInference

SPEC_SCALE = 0.05  # fraction of the paper's KLoC for the synthetic corpus

_rows = []


def _sources():
    sources = dict(spec_sources(scale=SPEC_SCALE))
    for name, spec in ALL_BENCHMARKS.items():
        sources[name] = spec.source
    return sources


@pytest.mark.parametrize("name,source", sorted(_sources().items()))
def test_table1_analysis_time(benchmark, name, source):
    benchmark.group = "table1-analysis"
    benchmark.name = name

    def analyze():
        return LockInference(source, k=9).run()

    result = benchmark.pedantic(analyze, rounds=1, iterations=1)
    row = table1_row(name, source)
    benchmark.extra_info["kloc"] = row.kloc
    benchmark.extra_info["sections"] = row.sections
    benchmark.extra_info["time_k0"] = row.time_k0
    benchmark.extra_info["time_k9"] = row.time_k9
    assert result.sections
    _rows.append(row)
    if len(_rows) == len(_sources()):
        _rows.sort(key=lambda r: -r.kloc)
        emit_report(
            "table1",
            f"Table 1: program size and analysis time "
            f"(SPEC corpus at {SPEC_SCALE}x paper KLoC)",
            table1(_rows),
        )
