"""Serving benchmark: warm server analyze vs cold-process ``repro analyze``.

The point of ``repro serve`` is amortization: interpreter startup, parse,
lower, CFG construction, pointer analysis, and the solve itself all stay
resident, so a repeat analysis of an unchanged source costs one socket
round-trip and a memo lookup.  This benchmark quantifies that over the
Table 1 k=9 column (the STAMP corpus, plus the synthetic SPEC rows unless
``--quick``) and writes ``BENCH_serve.json`` at the repo root:

* **cold** — one fresh ``python -m repro analyze <file> --k 9
  --no-disk-cache`` subprocess per program: what a scripted sweep pays
  without the server;
* **warm** — one fresh :class:`ServeClient` connection per program
  against an already-warmed server: connect, request, response.

The acceptance bar is ``MIN_SPEEDUP`` (warm total at least 5x faster than
cold total); ``--check-baseline`` enforces it and additionally compares
the fresh warm total against the committed JSON with a regression factor,
mirroring ``bench_analysis_speed.py``.

Run standalone (``python benchmarks/bench_serve.py [--quick]
[--check-baseline]``) or under pytest
(``pytest benchmarks/bench_serve.py``).
"""

import json
import os
import shutil
import subprocess
import sys
import tempfile
import time

sys.path.insert(0, os.path.dirname(__file__))

from conftest import emit_report  # noqa: E402
from repro.bench.configs import STAMP_BENCHMARKS  # noqa: E402
from repro.bench.programs.spec import spec_sources  # noqa: E402
from repro.serve import AnalysisServer, ServeClient  # noqa: E402

SPEC_SCALE = 0.05  # matches bench_analysis_speed.py
K = 9

# warm server analyze must beat the cold-process path by at least this
MIN_SPEEDUP = 5.0
# --check-baseline also fails if fresh warm total exceeds the committed
# one by more than this factor
REGRESSION_FACTOR = 1.5

JSON_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_serve.json")

SRC_DIR = os.path.normpath(os.path.join(os.path.dirname(__file__), "..",
                                        "src"))


def corpus(quick: bool = False):
    sources = {} if quick else dict(spec_sources(scale=SPEC_SCALE))
    for name, spec in STAMP_BENCHMARKS.items():
        sources[name] = spec.source
    return sources


def _cold_process(path: str) -> float:
    env = dict(os.environ, PYTHONPATH=SRC_DIR)
    started = time.perf_counter()
    subprocess.run(
        [sys.executable, "-m", "repro", "analyze", path, "--k", str(K),
         "--no-disk-cache"],
        env=env, check=True, stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL)
    return time.perf_counter() - started


def measure(quick: bool = False):
    sources = corpus(quick)
    workdir = tempfile.mkdtemp(prefix="bench-serve-")
    socket_path = os.path.join(workdir, "serve.sock")
    server = AnalysisServer(socket_path=socket_path,
                            cache_dir=os.path.join(workdir, "cache"))
    server.start()
    rows = {}
    cold_total = warm_total = 0.0
    try:
        # write each program to a file for the cold-process runs, and warm
        # the server with one computing round
        paths = {}
        with ServeClient(socket_path=socket_path) as client:
            for name, source in sorted(sources.items()):
                path = os.path.join(workdir, f"{name}.mc")
                with open(path, "w") as handle:
                    handle.write(source)
                paths[name] = path
                client.analyze(source, k=K)

        for name, source in sorted(sources.items()):
            cold_s = _cold_process(paths[name])
            started = time.perf_counter()
            with ServeClient(socket_path=socket_path) as client:
                response = client.analyze(source, k=K)
            warm_s = time.perf_counter() - started
            assert response["served"] in ("memo", "warm"), response["served"]
            cold_total += cold_s
            warm_total += warm_s
            rows[name] = {
                "cold_process_s": round(cold_s, 4),
                "warm_serve_s": round(warm_s, 4),
                "speedup": round(cold_s / warm_s, 1),
                "served": response["served"],
            }
    finally:
        server.stop(timeout=30)
        shutil.rmtree(workdir, ignore_errors=True)
    return {
        "benchmark": "serve-warm-vs-cold-process",
        "quick": quick,
        "k": K,
        "spec_scale": SPEC_SCALE,
        "programs": rows,
        "cold_total_s": round(cold_total, 3),
        "warm_total_s": round(warm_total, 3),
        "speedup": round(cold_total / warm_total, 1),
        "min_speedup": MIN_SPEEDUP,
    }


def render(report) -> str:
    lines = [f"{'Program':12s} {'cold proc (s)':>14s} {'warm serve (s)':>15s} "
             f"{'speedup':>8s} {'served':>9s}"]
    for name, row in sorted(report["programs"].items()):
        lines.append(
            f"{name:12s} {row['cold_process_s']:14.3f} "
            f"{row['warm_serve_s']:15.4f} {row['speedup']:7.0f}x "
            f"{row['served']:>9s}"
        )
    lines.append(
        f"{'TOTAL':12s} {report['cold_total_s']:14.3f} "
        f"{report['warm_total_s']:15.4f} {report['speedup']:7.0f}x"
    )
    lines.append(
        f"warm server vs cold process: {report['speedup']:.0f}x "
        f"(bar: >= {report['min_speedup']:.0f}x)"
    )
    return "\n".join(lines)


def write_json(report) -> str:
    path = os.path.abspath(JSON_PATH)
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def check_baseline(report, path=None) -> bool:
    """Enforce the speedup bar, and the regression gate when a committed
    ``BENCH_serve.json`` exists."""
    ok = report["speedup"] >= MIN_SPEEDUP
    verdict = "OK" if ok else "TOO SLOW"
    print(f"speedup gate: {report['speedup']:.1f}x vs required "
          f"{MIN_SPEEDUP:.0f}x -> {verdict}")
    path = os.path.abspath(path or JSON_PATH)
    try:
        with open(path) as handle:
            committed = json.load(handle)
        baseline = float(committed["warm_total_s"])
    except (OSError, ValueError, KeyError):
        print(f"no committed baseline at {path}; skipping the "
              "regression gate")
        return ok
    fresh = report["warm_total_s"]
    limit = baseline * REGRESSION_FACTOR
    verdict = "OK" if fresh <= limit else "REGRESSION"
    print(f"baseline gate: warm {fresh:.3f}s vs committed "
          f"{baseline:.3f}s (limit {limit:.3f}s) -> {verdict}")
    return ok and fresh <= limit


def test_serve_speed(benchmark):
    benchmark.group = "serve"

    report = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info["cold_total_s"] = report["cold_total_s"]
    benchmark.extra_info["warm_total_s"] = report["warm_total_s"]
    benchmark.extra_info["speedup"] = report["speedup"]
    write_json(report)
    emit_report(
        "serve_speed",
        f"Serving: warm server analyze vs cold-process repro analyze "
        f"(k={K})",
        render(report),
    )
    assert report["programs"]
    assert report["speedup"] >= MIN_SPEEDUP


def main(argv=None) -> int:
    argv = list(argv if argv is not None else sys.argv[1:])
    quick = "--quick" in argv
    gate = "--check-baseline" in argv
    report = measure(quick=quick)
    print(render(report))
    ok = True
    if gate:
        ok = check_baseline(report)
    if not quick and not gate:
        path = write_json(report)
        print(f"wrote {path}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
