"""Schedule-exploration benchmark: coverage, canaries, and detector cost.

Exercises the ``repro.explore`` subsystem end to end and writes
``BENCH_explore.json`` at the repo root:

* **coverage** — random + PCT sweeps over the differential corpus
  (zero violations expected on the transformed programs);
* **fault canary** — every fault-injection kind on the counter must be
  detected by the §4.2 protection checker, and ``drop-acquire`` with the
  checker disabled must be caught by the happens-before race detector
  (the checkers are not vacuous);
* **exhaustive** — the DFS enumerator's leaf count must equal the
  multinomial closed form for a 2-thread 6-event micro-program;
* **differential** — inferred × global × STM final states must match the
  sequential baseline on every explored schedule;
* **detector overhead** — wall-clock of a hashtable sweep with the race
  detector on vs off; the PR's acceptance bar is ≤ 3×.

Run standalone (``python benchmarks/bench_explore.py [--quick]``,
``--quick`` = CI smoke: fewer schedules, no JSON rewrite) or under pytest
(``pytest benchmarks/bench_explore.py``).
"""

import json
import os
import sys
import time

sys.path.insert(0, os.path.dirname(__file__))

from conftest import emit_report  # noqa: E402
from repro.explore import (  # noqa: E402
    DIFF_CORPUS,
    differential_check,
    explore_program,
    exhaustive_explore,
    interleaving_count,
)
from repro.sim import Scheduler  # noqa: E402

JSON_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_explore.json")

OVERHEAD_BAR = 3.0  # race detector may cost at most 3x the undetected run


def coverage_sweep(quick: bool):
    schedules = 10 if quick else 50
    rows = {}
    for name in sorted(DIFF_CORPUS):
        for policy in ("random", "pct"):
            report = explore_program(
                name, policy=policy, seed=0, schedules=schedules,
                threads=4, ops=8,
            )
            rows[f"{name}/{policy}"] = {
                "schedules": report.schedules_explored,
                "distinct_classes": report.distinct_classes,
                "violations": report.detections,
            }
    return rows


def fault_canaries():
    rows = {}
    for kind in ("drop-acquire", "drop-node", "weaken-acquire"):
        report = explore_program(
            "counter", policy="random", seed=0, schedules=10,
            threads=3, ops=4, fault=kind,
        )
        rows[kind] = {
            "detections": report.detections,
            "affected_schedules": report.affected_schedules,
        }
    # checker off: the race detector alone must catch the dropped acquire
    report = explore_program(
        "counter", policy="random", seed=0, schedules=10,
        threads=3, ops=4, fault="drop-acquire", check=False,
    )
    rows["drop-acquire/no-checker"] = {
        "detections": report.detections,
        "races": report.races_total,
    }
    return rows


def exhaustive_check():
    def worker(n):
        for _ in range(n):
            yield 1

    def run(policy):
        scheduler = Scheduler(ncores=1, policy=policy)
        scheduler.spawn(worker(3))
        scheduler.spawn(worker(3))
        return scheduler.run().ticks

    outcomes, complete = exhaustive_explore(run, limit=1000)
    expected = interleaving_count([3, 3])
    return {
        "leaves": len(outcomes),
        "closed_form": expected,
        "complete": complete,
        "match": complete and len(outcomes) == expected,
    }


def differential_sweep(quick: bool):
    schedules = 3 if quick else 10
    rows = {}
    for name in sorted(DIFF_CORPUS):
        report = differential_check(
            name, schedules=schedules, threads=3, ops=6,
        )
        rows[name] = report.to_dict()
    return rows


def detector_overhead(quick: bool):
    schedules = 5 if quick else 20
    kwargs = dict(policy="random", seed=0, schedules=schedules,
                  threads=4, ops=8)
    # warm the inference cache so neither side pays the analysis
    explore_program("hashtable", detector=False, schedules=1,
                    policy="random", seed=0, threads=4, ops=8)
    started = time.perf_counter()
    explore_program("hashtable", detector=False, **kwargs)
    base = time.perf_counter() - started
    started = time.perf_counter()
    explore_program("hashtable", detector=True, **kwargs)
    detected = time.perf_counter() - started
    return {
        "schedules": schedules,
        "without_detector_s": round(base, 4),
        "with_detector_s": round(detected, 4),
        "overhead_x": round(detected / base, 2) if base else None,
        "bar_x": OVERHEAD_BAR,
    }


def measure(quick: bool = False):
    return {
        "benchmark": "schedule-exploration",
        "quick": quick,
        "coverage": coverage_sweep(quick),
        "fault_canaries": fault_canaries(),
        "exhaustive": exhaustive_check(),
        "differential": differential_sweep(quick),
        "detector_overhead": detector_overhead(quick),
    }


def render(report) -> str:
    lines = [f"{'Program/policy':22s} {'scheds':>6s} {'classes':>8s} "
             f"{'violations':>10s}"]
    for key, row in sorted(report["coverage"].items()):
        lines.append(f"{key:22s} {row['schedules']:6d} "
                     f"{row['distinct_classes']:8d} {row['violations']:10d}")
    lines.append("")
    lines.append("fault canaries (detections must be > 0):")
    for kind, row in sorted(report["fault_canaries"].items()):
        lines.append(f"  {kind:24s} detections={row['detections']}"
                     + (f" races={row['races']}" if "races" in row else ""))
    ex = report["exhaustive"]
    lines.append(f"exhaustive: {ex['leaves']} leaves vs closed form "
                 f"{ex['closed_form']} -> "
                 f"{'match' if ex['match'] else 'MISMATCH'}")
    lines.append("differential conformance:")
    for name, row in sorted(report["differential"].items()):
        lines.append(f"  {name:14s} {'OK' if row['ok'] else 'FAIL'}")
    oh = report["detector_overhead"]
    lines.append(f"race-detector overhead: {oh['with_detector_s']:.3f}s vs "
                 f"{oh['without_detector_s']:.3f}s = {oh['overhead_x']}x "
                 f"(bar {oh['bar_x']}x)")
    return "\n".join(lines)


def check(report) -> None:
    for key, row in report["coverage"].items():
        assert row["violations"] == 0, f"violations in clean sweep {key}"
    for kind, row in report["fault_canaries"].items():
        assert row["detections"] > 0, f"fault {kind} went undetected"
    assert report["fault_canaries"]["drop-acquire/no-checker"]["races"] > 0
    assert report["exhaustive"]["match"]
    for name, row in report["differential"].items():
        assert row["ok"], f"differential mismatch on {name}"
    assert report["detector_overhead"]["overhead_x"] <= OVERHEAD_BAR


def write_json(report) -> str:
    path = os.path.abspath(JSON_PATH)
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def test_explore(benchmark):
    benchmark.group = "schedule-exploration"
    report = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info["overhead_x"] = (
        report["detector_overhead"]["overhead_x"])
    write_json(report)
    emit_report(
        "explore",
        "Schedule exploration: coverage, canaries, differential, overhead",
        render(report),
    )
    check(report)


def main(argv=None) -> int:
    quick = "--quick" in (argv if argv is not None else sys.argv[1:])
    report = measure(quick=quick)
    print(render(report))
    check(report)
    path = write_json(report)
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
