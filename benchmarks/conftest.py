"""Shared helpers for the benchmark harnesses.

Each benchmark regenerates one of the paper's tables/figures. The rendered
report is written to ``benchmarks/results/<name>.txt`` and replayed in the
terminal summary after the pytest-benchmark tables (pytest's fd-level
capture would otherwise swallow mid-test prints), so
``pytest benchmarks/ --benchmark-only | tee bench_output.txt`` records the
actual tables, not just timings.
"""

import os

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

_REPORTS = []


def emit_report(name: str, title: str, text: str) -> None:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as handle:
        handle.write(text + "\n")
    _REPORTS.append((title, text))


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.ensure_newline()
    for title, text in _REPORTS:
        terminalreporter.section(title, sep="=")
        terminalreporter.write_line(text)
