"""Robustness benchmark: checkpoint overhead, resume warmth, anytime soundness.

Three claims from ``docs/ROBUSTNESS.md``, measured and gated:

* **checkpoint overhead** — a cold analyze with ``checkpoint_every=1``
  (flush converged bundles + rewrite the progress cursor at every solved
  SCC level) costs at most ``MAX_OVERHEAD`` of the same cold analyze
  without checkpointing.  Durability is nearly free because the flushes
  reuse the incremental ``store_dirty`` path;
* **resume warmth** — a run aborted after its second checkpoint, rerun
  with the same cache dir, resumes from the on-disk cursor and skips at
  least as many schedule levels as were checkpointed, producing the same
  inference as an uninterrupted run;
* **anytime soundness** — across the corpus and a ladder of step budgets,
  the budgeted ``allow_partial`` result is a pure coarsening of the
  unbudgeted one: non-degraded sections identical, degraded sections
  exactly the global lock.

Writes ``BENCH_robust.json`` at the repo root.  Run standalone
(``python benchmarks/bench_robust.py [--quick] [--check-baseline]``) or
under pytest (``pytest benchmarks/bench_robust.py``).
"""

import json
import os
import shutil
import sys
import tempfile
import time

sys.path.insert(0, os.path.dirname(__file__))

from conftest import emit_report  # noqa: E402
from repro.bench.configs import STAMP_BENCHMARKS  # noqa: E402
from repro.bench.programs.spec import generate_spec_program  # noqa: E402
from repro.inference import AnalysisBudget, LockInference  # noqa: E402
from repro.locks.effects import RW  # noqa: E402
from repro.locks.paperlock import global_lock  # noqa: E402

K = 9
# cold analyze with per-level checkpointing may cost at most 10% extra
MAX_OVERHEAD = 1.10
# --check-baseline also fails if the fresh checkpointed total exceeds the
# committed one by more than this factor
REGRESSION_FACTOR = 1.5
# step budgets for the soundness sweep (1 degrades everything, the top of
# the ladder usually converges)
BUDGET_LADDER = (1, 50, 1000)
ROUNDS = 3  # overhead is best-of-N to shave scheduler noise

JSON_PATH = os.path.join(os.path.dirname(__file__), "..",
                         "BENCH_robust.json")

# a generated program big enough for a multi-level SCC schedule; the
# STAMP sources are too small for checkpointing to mean anything
CHECKPOINT_PROGRAM = ("vpr", 0.3, 7)


def _checkpoint_source() -> str:
    name, kloc, seed = CHECKPOINT_PROGRAM
    return generate_spec_program(name, kloc=kloc, seed=seed)


def _timed_analyze(source, cache_root, checkpoint_every):
    workdir = tempfile.mkdtemp(prefix="bench-robust-", dir=cache_root)
    started = time.perf_counter()
    result = LockInference(source, k=K, cache_dir=workdir,
                           checkpoint_every=checkpoint_every).run()
    elapsed = time.perf_counter() - started
    shutil.rmtree(workdir, ignore_errors=True)
    return elapsed, result


def measure_overhead(cache_root):
    """Best-of-N cold analyze, with and without per-level checkpoints."""
    source = _checkpoint_source()
    plain = ckpt = None
    checkpoints = 0
    for _ in range(ROUNDS):
        plain_s, _ = _timed_analyze(source, cache_root, 0)
        ckpt_s, result = _timed_analyze(source, cache_root, 1)
        plain = plain_s if plain is None else min(plain, plain_s)
        ckpt = ckpt_s if ckpt is None else min(ckpt, ckpt_s)
        checkpoints = result.profile.checkpoints
    return {
        "plain_s": round(plain, 3),
        "checkpointed_s": round(ckpt, 3),
        "checkpoints": checkpoints,
        "overhead": round(ckpt / plain, 3),
        "max_overhead": MAX_OVERHEAD,
    }


def measure_resume(cache_root):
    """Abort after the second checkpoint; the rerun must resume warm."""
    source = _checkpoint_source()
    workdir = tempfile.mkdtemp(prefix="bench-robust-resume-", dir=cache_root)

    class Abort(RuntimeError):
        pass

    hits = []

    def bomb(level):
        hits.append(level)
        if len(hits) >= 2:
            raise Abort

    try:
        try:
            LockInference(source, k=K, cache_dir=workdir, checkpoint_every=1,
                          on_checkpoint=bomb).run()
            raise AssertionError("abort hook never fired")
        except Abort:
            pass
        started = time.perf_counter()
        resumed = LockInference(source, k=K, cache_dir=workdir,
                                checkpoint_every=1).run()
        resume_s = time.perf_counter() - started
        pure = LockInference(source, k=K).run()
        identical = (resumed.describe() == pure.describe()
                     and resumed.lock_counts() == pure.lock_counts())
        return {
            "checkpoints_before_crash": len(hits),
            "resumed_from_level": resumed.profile.resumed_from_level,
            "levels_skipped": resumed.profile.levels_skipped,
            "resume_s": round(resume_s, 3),
            "identical_to_pure_run": identical,
        }
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def _coarsening_violations(budgeted, full) -> int:
    fallback = frozenset({global_lock(RW)})
    bad = 0
    if set(budgeted.sections) != set(full.sections):
        return max(len(budgeted.sections), len(full.sections))
    for sid, section in budgeted.sections.items():
        if sid in budgeted.degraded_sections:
            bad += section.locks != fallback
        else:
            bad += section.locks != full.sections[sid].locks
    return bad


def measure_soundness(quick=False):
    """Budget ladder over the STAMP corpus: count degradations, verify
    every budgeted result is a pure coarsening of the full one."""
    names = sorted(STAMP_BENCHMARKS)
    if quick:
        names = names[:3]
    rows = {}
    violations = 0
    for name in names:
        source = STAMP_BENCHMARKS[name].source
        full = LockInference(source, k=K).run()
        ladder = {}
        for steps in BUDGET_LADDER:
            budgeted = LockInference(
                source, k=K, budget=AnalysisBudget(max_steps=steps),
                allow_partial=True).run()
            violations += _coarsening_violations(budgeted, full)
            ladder[str(steps)] = {
                "degraded": len(budgeted.degraded_sections),
                "sections": len(budgeted.sections),
            }
        rows[name] = ladder
    return {"programs": rows, "budget_ladder": list(BUDGET_LADDER),
            "coarsening_violations": violations}


def measure(quick=False):
    cache_root = tempfile.mkdtemp(prefix="bench-robust-root-")
    try:
        overhead = measure_overhead(cache_root)
        resume = measure_resume(cache_root)
    finally:
        shutil.rmtree(cache_root, ignore_errors=True)
    soundness = measure_soundness(quick=quick)
    return {
        "benchmark": "anytime-robustness",
        "quick": quick,
        "k": K,
        "checkpoint_program": list(CHECKPOINT_PROGRAM),
        "overhead": overhead,
        "resume": resume,
        "soundness": soundness,
    }


def render(report) -> str:
    o, r, s = report["overhead"], report["resume"], report["soundness"]
    lines = [
        f"cold analyze:              {o['plain_s']:.3f}s",
        f"  + per-level checkpoints: {o['checkpointed_s']:.3f}s "
        f"({o['checkpoints']} checkpoints, {o['overhead']:.2f}x, "
        f"bar <= {o['max_overhead']:.2f}x)",
        f"resume after crash:        from level {r['resumed_from_level']}, "
        f"{r['levels_skipped']} levels warm "
        f"(>= {r['checkpoints_before_crash']} checkpointed), "
        f"{r['resume_s']:.3f}s, identical={r['identical_to_pure_run']}",
        "",
        f"{'Program':12s} " + " ".join(f"steps<={b:>5d}"
                                       for b in s["budget_ladder"]),
    ]
    for name, ladder in sorted(s["programs"].items()):
        cells = " ".join(
            f"{ladder[str(b)]['degraded']:4d}/{ladder[str(b)]['sections']:<6d}"
            for b in s["budget_ladder"])
        lines.append(f"{name:12s} {cells}  (degraded/sections)")
    lines.append(f"coarsening violations: {s['coarsening_violations']} "
                 "(must be 0)")
    return "\n".join(lines)


def write_json(report) -> str:
    path = os.path.abspath(JSON_PATH)
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def _gates(report):
    o, r, s = report["overhead"], report["resume"], report["soundness"]
    return {
        "checkpoint overhead": o["overhead"] <= MAX_OVERHEAD,
        "resume skips checkpointed levels":
            r["levels_skipped"] >= r["checkpoints_before_crash"]
            and r["resumed_from_level"] is not None,
        "resume identical": r["identical_to_pure_run"],
        "pure coarsening": s["coarsening_violations"] == 0,
    }


def check_baseline(report, path=None) -> bool:
    ok = True
    for gate, passed in _gates(report).items():
        print(f"{gate}: {'OK' if passed else 'FAIL'}")
        ok = ok and passed
    path = os.path.abspath(path or JSON_PATH)
    try:
        with open(path) as handle:
            committed = json.load(handle)
        baseline = float(committed["overhead"]["checkpointed_s"])
    except (OSError, ValueError, KeyError):
        print(f"no committed baseline at {path}; skipping the "
              "regression gate")
        return ok
    fresh = report["overhead"]["checkpointed_s"]
    limit = baseline * REGRESSION_FACTOR
    verdict = "OK" if fresh <= limit else "REGRESSION"
    print(f"baseline gate: checkpointed {fresh:.3f}s vs committed "
          f"{baseline:.3f}s (limit {limit:.3f}s) -> {verdict}")
    return ok and fresh <= limit


def test_robustness(benchmark):
    benchmark.group = "robust"

    report = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info["overhead"] = report["overhead"]["overhead"]
    benchmark.extra_info["levels_skipped"] = (
        report["resume"]["levels_skipped"])
    write_json(report)
    emit_report(
        "robustness",
        f"Robustness: checkpoint overhead, resume warmth, anytime "
        f"soundness (k={K})",
        render(report),
    )
    for gate, passed in _gates(report).items():
        assert passed, gate


def main(argv=None) -> int:
    argv = list(argv if argv is not None else sys.argv[1:])
    quick = "--quick" in argv
    gate = "--check-baseline" in argv
    report = measure(quick=quick)
    print(render(report))
    ok = True
    if gate:
        ok = check_baseline(report)
    if not quick:
        path = write_json(report)
        print(f"wrote {path}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
