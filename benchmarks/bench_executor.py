"""Executor benchmark: parallel speedup, tick equality, resume semantics.

Runs a Table-2-shaped sweep (micro benchmarks × all four configurations)
through :func:`repro.bench.executor.run_cells` twice — serial (``jobs=1``,
in-process) and parallel (``jobs=4`` worker processes) — and writes
``BENCH_executor.json`` at the repo root with:

* the wall clock of both paths and the speedup (the simulation is
  deterministic, so the parallel path must be tick-for-tick identical to
  the serial one — asserted, not assumed);
* a resume check: the sweep is "killed" mid-flight by priming a fresh
  cache with only a prefix of the grid, then re-run with ``resume=True``
  — the JSONL event log must show exactly the primed cells as cache-hits
  and only the unfinished cells re-executing.

Run standalone (``python benchmarks/bench_executor.py [--quick]``,
``--quick`` = small-grid CI smoke) or under pytest.
"""

import argparse
import json
import os
import sys
import tempfile
import time

sys.path.insert(0, os.path.dirname(__file__))

from conftest import emit_report  # noqa: E402
from repro.bench import (  # noqa: E402
    ExecutorOptions,
    MICRO_BENCHMARKS,
    run_cells,
    table2_cells,
)

JOBS = 4
JSON_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_executor.json")


def grid(quick=False):
    if quick:
        benches = {"hashtable-2": MICRO_BENCHMARKS["hashtable-2"]}
        return table2_cells(benches, threads=4, n_ops=20,
                            configs=("global", "fine+coarse"))
    benches = {
        name: MICRO_BENCHMARKS[name]
        for name in ("hashtable-2", "rbtree", "TH", "hashtable")
    }
    return table2_cells(benches, threads=8, n_ops=60)


def _count_events(path, kind):
    with open(path) as handle:
        return sum(1 for line in handle
                   if json.loads(line)["event"] == kind)


def measure(quick=False):
    cells = grid(quick)
    with tempfile.TemporaryDirectory() as tmp:
        started = time.perf_counter()
        serial = run_cells(cells, ExecutorOptions(
            jobs=1, cache_dir=os.path.join(tmp, "serial")))
        serial_wall = time.perf_counter() - started

        started = time.perf_counter()
        parallel = run_cells(cells, ExecutorOptions(
            jobs=JOBS, cache_dir=os.path.join(tmp, "parallel")))
        parallel_wall = time.perf_counter() - started

        assert all(r.ok for r in serial), [r.error for r in serial if not r.ok]
        assert all(r.ok for r in parallel), [
            r.error for r in parallel if not r.ok]
        identical = all(
            a.result.to_dict() == b.result.to_dict()
            for a, b in zip(serial, parallel)
        )

        # resume: prime a fresh cache with a prefix (the "killed" sweep),
        # then resume the full grid and read the event log back
        primed = cells[: len(cells) // 2]
        resume_cache = os.path.join(tmp, "resume")
        run_cells(primed, ExecutorOptions(jobs=1, cache_dir=resume_cache))
        events_path = os.path.join(tmp, "resume-events.jsonl")
        resumed = run_cells(cells, ExecutorOptions(
            jobs=1, resume=True, cache_dir=resume_cache,
            events_path=events_path))
        cache_hits = _count_events(events_path, "cache-hit")
        reexecuted = _count_events(events_path, "cell-start")
        resume_ok = (
            cache_hits == len(primed)
            and reexecuted == len(cells) - len(primed)
            and all(r.ok for r in resumed)
            and all(a.ticks == b.ticks for a, b in zip(serial, resumed))
        )

    return {
        "benchmark": "executor-parallel-sweep",
        "quick": quick,
        "cells": len(cells),
        "jobs": JOBS,
        "cpu_count": os.cpu_count(),
        "serial_wall_s": round(serial_wall, 3),
        "parallel_wall_s": round(parallel_wall, 3),
        "speedup": round(serial_wall / parallel_wall, 2),
        "ticks_identical": identical,
        "resume": {
            "primed": len(primed),
            "cache_hits": cache_hits,
            "reexecuted": reexecuted,
            "ok": resume_ok,
        },
    }


def render(report) -> str:
    return "\n".join([
        f"grid: {report['cells']} cells "
        f"(Table-2-shaped, jobs={report['jobs']}, "
        f"cpus={report['cpu_count']})",
        f"serial   (--jobs 1): {report['serial_wall_s']:.3f}s",
        f"parallel (--jobs {report['jobs']}): "
        f"{report['parallel_wall_s']:.3f}s  "
        f"({report['speedup']:.2f}x)",
        f"tick-for-tick identical: {report['ticks_identical']}",
        f"resume: {report['resume']['cache_hits']} cache-hits / "
        f"{report['resume']['reexecuted']} re-executed "
        f"(ok={report['resume']['ok']})",
    ])


def write_json(report) -> str:
    path = os.path.abspath(JSON_PATH)
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def test_executor_sweep(benchmark):
    benchmark.group = "executor"
    quick = os.environ.get("REPRO_BENCH_QUICK") == "1"
    report = benchmark.pedantic(measure, kwargs={"quick": quick},
                                rounds=1, iterations=1)
    benchmark.extra_info.update(
        serial_wall_s=report["serial_wall_s"],
        parallel_wall_s=report["parallel_wall_s"],
        speedup=report["speedup"],
    )
    assert report["ticks_identical"]
    assert report["resume"]["ok"]
    if (os.cpu_count() or 1) >= JOBS:
        # on a multi-core runner the pool must be measurably faster
        assert report["parallel_wall_s"] < report["serial_wall_s"]
    if not quick:
        write_json(report)
    emit_report("executor", "Executor: parallel sweep vs serial",
                render(report))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true")
    args = parser.parse_args(argv)
    report = measure(quick=args.quick)
    print(render(report))
    if not (report["ticks_identical"] and report["resume"]["ok"]):
        return 1
    if not args.quick:
        path = write_json(report)
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
